package analytics

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nous/internal/core"
	"nous/internal/graph"
)

func testKG(t *testing.T) *core.KG {
	t.Helper()
	kg := core.NewKG(nil)
	facts := []core.Triple{
		{Subject: "DJI", Predicate: "acquired", Object: "Aeros Imaging", Confidence: 1, Curated: true},
		{Subject: "DJI", Predicate: "headquarteredIn", Object: "Shenzhen", Confidence: 1, Curated: true},
		{Subject: "Windermere Capital", Predicate: "invests", Object: "DJI", Confidence: 1, Curated: true},
		{Subject: "Aeros Imaging", Predicate: "headquarteredIn", Object: "Shenzhen", Confidence: 1, Curated: true},
	}
	for _, f := range facts {
		if _, err := kg.AddFact(f); err != nil {
			t.Fatal(err)
		}
	}
	return kg
}

func TestPageRankMemoizedAtUnchangedEpoch(t *testing.T) {
	kg := testKG(t)
	c := New(kg)
	first := c.PageRank()
	if len(first) == 0 {
		t.Fatal("empty PageRank")
	}
	st0 := c.Stats()
	if st0.Computes != 1 || st0.Misses != 1 {
		t.Fatalf("after first read: %+v", st0)
	}
	for i := 0; i < 10; i++ {
		again := c.PageRank()
		// Same epoch must serve the identical snapshot, not a recomputation.
		if len(again) != len(first) {
			t.Fatalf("snapshot changed at unchanged epoch")
		}
	}
	st := c.Stats()
	if st.Computes != 1 {
		t.Fatalf("recomputed at unchanged epoch: %+v", st)
	}
	if st.Hits != 10 {
		t.Fatalf("hits = %d, want 10", st.Hits)
	}
}

func TestEpochBumpInvalidates(t *testing.T) {
	kg := testKG(t)
	c := New(kg)
	c.MaxLag = 0 // strict freshness for this test
	before := c.PageRank()
	id, _ := kg.Entity("Shenzhen")
	prBefore := before[id]

	// A write moves the epoch; the next read must recompute.
	kg.AddEntity("Orbit Dynamics", "Company")
	if _, err := kg.AddFact(core.Triple{
		Subject: "Orbit Dynamics", Predicate: "invests", Object: "DJI", Confidence: 1, Curated: true,
	}); err != nil {
		t.Fatal(err)
	}
	after := c.PageRank()
	st := c.Stats()
	if st.Computes != 2 {
		t.Fatalf("computes = %d, want 2 (one per epoch)", st.Computes)
	}
	if after[id] == prBefore && len(after) == len(before) {
		t.Log("rank numerically unchanged — acceptable, but recompute must have happened")
	}
}

func TestMaxLagServesBoundedStaleness(t *testing.T) {
	kg := testKG(t)
	c := New(kg)
	c.MaxLag = 1000
	c.PageRank()
	// A handful of writes stays inside the budget: no recompute.
	kg.AddEntity("Nimbus Labs", "Company")
	c.PageRank()
	st := c.Stats()
	if st.Computes != 1 {
		t.Fatalf("computes = %d, want 1 within staleness budget", st.Computes)
	}
	if st.Hits != 1 {
		t.Fatalf("hits = %d, want 1", st.Hits)
	}
}

func TestPopularityPriorNormalized(t *testing.T) {
	kg := testKG(t)
	c := New(kg)
	prior := c.PopularityPrior()
	if len(prior) == 0 {
		t.Fatal("empty prior")
	}
	maxP := 0.0
	for name, p := range prior {
		if p < 0 || p > 1 {
			t.Fatalf("prior[%s] = %v out of [0,1]", name, p)
		}
		if p > maxP {
			maxP = p
		}
	}
	if maxP != 1 {
		t.Fatalf("max prior = %v, want 1 (normalized)", maxP)
	}
	// DJI has the most in-links; it should be the most popular.
	best, bestP := "", -1.0
	for name, p := range prior {
		if p > bestP {
			best, bestP = name, p
		}
	}
	if best != "DJI" && best != "Shenzhen" {
		t.Fatalf("most popular = %q (%v), want a hub entity", best, bestP)
	}
}

func TestSingleflightDedup(t *testing.T) {
	kg := testKG(t)
	c := New(kg)
	var computes atomic.Int64
	c.SetTopicsFn(func() map[graph.VertexID][]float64 {
		computes.Add(1)
		return map[graph.VertexID][]float64{0: {1}}
	})

	const goroutines = 32
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if v := c.Topics(); v == nil {
				t.Error("nil topics")
			}
		}()
	}
	wg.Wait()
	if got := computes.Load(); got != 1 {
		t.Fatalf("topic builds = %d, want 1 (singleflight)", got)
	}
}

func TestConcurrentPageRankOneCompute(t *testing.T) {
	kg := testKG(t)
	c := New(kg)
	const goroutines = 16
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if len(c.PageRank()) == 0 {
				t.Error("empty PageRank")
			}
		}()
	}
	wg.Wait()
	if st := c.Stats(); st.Computes != 1 {
		t.Fatalf("computes = %d, want 1 under concurrency", st.Computes)
	}
}

func TestTopicsStickyAcrossMutations(t *testing.T) {
	kg := testKG(t)
	c := New(kg)
	builds := 0
	c.SetTopicsFn(func() map[graph.VertexID][]float64 {
		builds++
		return map[graph.VertexID][]float64{}
	})
	c.Topics()
	kg.AddEntity("Vertex Aero", "Company") // epoch moves
	c.Topics()
	if builds != 1 {
		t.Fatalf("builds = %d, want 1 (topics are sticky)", builds)
	}
	st := c.Stats()
	if st.TopicsLag == 0 {
		t.Fatalf("topics lag = 0 after mutation: %+v", st)
	}
	c.RefreshTopics()
	if builds != 2 {
		t.Fatalf("builds = %d after refresh, want 2", builds)
	}
	if st := c.Stats(); st.TopicsLag != 0 {
		t.Fatalf("topics lag = %d after refresh, want 0", st.TopicsLag)
	}
}

func TestTopicsNilWithoutBuilder(t *testing.T) {
	c := New(testKG(t))
	if v := c.Topics(); v != nil {
		t.Fatalf("topics without builder = %v", v)
	}
}

// TestRefreshDuringInFlightBuildRecomputes pins the invalidate-vs-flight
// ordering: a RefreshTopics that lands while an older build is still
// computing must not be satisfied by that build's (stale) result.
func TestRefreshDuringInFlightBuildRecomputes(t *testing.T) {
	kg := testKG(t)
	c := New(kg)
	var builds atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})
	c.SetTopicsFn(func() map[graph.VertexID][]float64 {
		n := builds.Add(1)
		if n == 1 {
			close(started)
			<-release // hold the first build until the refresh is queued
		}
		return map[graph.VertexID][]float64{graph.VertexID(n): {1}}
	})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.Topics() // first build, blocks in the builder
	}()
	<-started

	wg.Add(1)
	var refreshed map[graph.VertexID][]float64
	go func() {
		defer wg.Done()
		refreshed = c.RefreshTopics() // invalidates, then waits on the flight
	}()
	// Give the refresher time to reach the flight wait, then let the first
	// build finish with its now-stale result.
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()

	if got := builds.Load(); got != 2 {
		t.Fatalf("builds = %d, want 2 (refresh must not reuse the in-flight stale build)", got)
	}
	if _, ok := refreshed[graph.VertexID(2)]; !ok {
		t.Fatalf("refresh returned the stale build: %v", refreshed)
	}
}

func TestInvalidatePriorForcesRecompute(t *testing.T) {
	kg := testKG(t)
	c := New(kg)
	c.PopularityPrior()
	base := c.Stats().Computes
	c.InvalidatePrior()
	c.PopularityPrior()
	if got := c.Stats().Computes; got <= base {
		t.Fatalf("computes = %d after invalidate, want > %d", got, base)
	}
}
