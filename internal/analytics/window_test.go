package analytics

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"nous/internal/core"
	"nous/internal/temporal"
)

// windowedKG mixes curated structure with dated extractions.
func windowedKG(t *testing.T) *core.KG {
	t.Helper()
	kg := core.NewKG(nil)
	day := func(n int) time.Time { return time.Date(2015, 1, 1, 0, 0, 0, 0, time.UTC).AddDate(0, 0, n) }
	facts := []core.Triple{
		{Subject: "DJI", Predicate: "acquired", Object: "Aeros Imaging", Confidence: 1, Curated: true},
		{Subject: "Windermere Capital", Predicate: "invests", Object: "DJI", Confidence: 1, Curated: true},
		{Subject: "GoPro", Predicate: "acquired", Object: "DJI", Confidence: 0.8,
			Provenance: core.Provenance{Source: "wsj", Time: day(5)}},
		{Subject: "GoPro", Predicate: "acquired", Object: "Aeros Imaging", Confidence: 0.8,
			Provenance: core.Provenance{Source: "wsj", Time: day(50)}},
	}
	for _, f := range facts {
		if _, err := kg.AddFact(f); err != nil {
			t.Fatal(err)
		}
	}
	return kg
}

func TestWindowedPageRankUnboundedDelegates(t *testing.T) {
	kg := windowedKG(t)
	c := New(kg)
	plain := c.PageRank()
	windowed := c.WindowedPageRank(temporal.All())
	if !reflect.DeepEqual(plain, windowed) {
		t.Fatal("unbounded windowed PageRank differs from PageRank")
	}
	if st := c.Stats(); st.WindowedArtifacts != 0 || st.WindowedComputes != 0 {
		t.Fatalf("unbounded window created windowed artifacts: %+v", st)
	}
}

func TestWindowedPageRankMemoizedPerWindow(t *testing.T) {
	kg := windowedKG(t)
	c := New(kg)
	w := temporal.Window{
		Since: time.Date(2015, 1, 1, 0, 0, 0, 0, time.UTC).Unix(),
		Until: time.Date(2015, 2, 1, 0, 0, 0, 0, time.UTC).Unix(),
	}
	first := c.WindowedPageRank(w)
	if len(first) == 0 {
		t.Fatal("empty windowed PageRank")
	}
	again := c.WindowedPageRank(w)
	st := c.Stats()
	if st.WindowedComputes != 1 {
		t.Fatalf("repeat at unchanged epoch recomputed: %+v", st)
	}
	if st.WindowedArtifacts != 1 {
		t.Fatalf("artifacts = %d, want 1", st.WindowedArtifacts)
	}
	if !reflect.DeepEqual(first, again) {
		t.Fatal("cached windowed PageRank differs")
	}
	// A different window is its own artifact.
	w2 := temporal.Window{Since: w.Since, Until: w.Until + 86400}
	c.WindowedPageRank(w2)
	if st := c.Stats(); st.WindowedComputes != 2 || st.WindowedArtifacts != 2 {
		t.Fatalf("second window stats: %+v", st)
	}
	// A mutation (beyond MaxLag) invalidates windowed artifacts too.
	c.MaxLag = 0
	if _, err := kg.AddFact(core.Triple{Subject: "DJI", Predicate: "acquired", Object: "RoboPix",
		Confidence: 0.9, Provenance: core.Provenance{Source: "wsj", Time: time.Date(2015, 1, 10, 0, 0, 0, 0, time.UTC)}}); err != nil {
		t.Fatal(err)
	}
	c.WindowedPageRank(w)
	if st := c.Stats(); st.WindowedComputes != 3 {
		t.Fatalf("stale windowed artifact served after mutation: %+v", st)
	}
}

func TestWindowedPageRankRespectsWindow(t *testing.T) {
	kg := windowedKG(t)
	c := New(kg)
	id, ok := kg.Entity("DJI")
	if !ok {
		t.Fatal("no DJI")
	}
	// Window containing only the day-5 extraction: the GoPro→DJI edge is in,
	// the GoPro→Aeros edge (day 50) is out, so DJI's windowed importance
	// differs from its importance in the window past day 50.
	early := temporal.Window{
		Since: time.Date(2015, 1, 1, 0, 0, 0, 0, time.UTC).Unix(),
		Until: time.Date(2015, 1, 20, 0, 0, 0, 0, time.UTC).Unix(),
	}
	late := temporal.Window{
		Since: time.Date(2015, 2, 10, 0, 0, 0, 0, time.UTC).Unix(),
		Until: time.Date(2015, 3, 20, 0, 0, 0, 0, time.UTC).Unix(),
	}
	if c.WindowedImportance(id, early) <= c.WindowedImportance(id, late) {
		t.Fatalf("windowed importance ignores edge windows: early=%v late=%v",
			c.WindowedImportance(id, early), c.WindowedImportance(id, late))
	}
}

func TestWindowedPageRankCapEvicts(t *testing.T) {
	kg := windowedKG(t)
	c := New(kg)
	for i := 0; i < maxWindowedArtifacts+4; i++ {
		c.WindowedPageRank(temporal.Window{Since: int64(i), Until: int64(i) + 100})
	}
	if st := c.Stats(); st.WindowedArtifacts > maxWindowedArtifacts {
		t.Fatalf("windowed cache grew past the cap: %+v", st)
	}
}

func TestWindowedPageRankConcurrent(t *testing.T) {
	kg := windowedKG(t)
	c := New(kg)
	done := make(chan struct{})
	for i := 0; i < 4; i++ {
		go func(i int) {
			defer func() { done <- struct{}{} }()
			for j := 0; j < 20; j++ {
				w := temporal.Window{Since: int64(j % 3), Until: int64(j%3) + 1000000000}
				if len(c.WindowedPageRank(w)) == 0 {
					t.Errorf("empty windowed PageRank (worker %d)", i)
					return
				}
			}
		}(i)
	}
	for i := 0; i < 4; i++ {
		<-done
	}
	if st := c.Stats(); st.WindowedArtifacts == 0 {
		t.Fatalf("no windowed artifacts after concurrent reads: %+v", fmt.Sprint(st))
	}
}

// TestWindowedPageRankHotWindowSurvivesChurn pins the LRU eviction policy:
// a window re-read between churning one-off windows must never be evicted,
// so its compute count stays at one no matter how many cold windows pass
// through the cap.
func TestWindowedPageRankHotWindowSurvivesChurn(t *testing.T) {
	kg := windowedKG(t)
	c := New(kg)
	c.MaxWindowed = 4
	hot := temporal.Window{Since: 100, Until: 1000000000}
	c.WindowedPageRank(hot)
	for i := 0; i < 20; i++ {
		c.WindowedPageRank(hot)
		c.WindowedPageRank(temporal.Window{Since: int64(1000 + i), Until: int64(2000 + i)})
	}
	st := c.Stats()
	// 1 hot compute + 20 cold computes; with arbitrary (or MRU) eviction the
	// hot window would recompute somewhere in the loop.
	if st.WindowedComputes != 21 {
		t.Fatalf("WindowedComputes = %d, want 21 (hot window was evicted)", st.WindowedComputes)
	}
	if st.WindowedArtifacts > 4 {
		t.Fatalf("artifacts = %d exceeds configured cap 4", st.WindowedArtifacts)
	}
}

// TestWindowedPageRankConfigurableCap pins that MaxWindowed overrides the
// default cap in both directions.
func TestWindowedPageRankConfigurableCap(t *testing.T) {
	kg := windowedKG(t)
	c := New(kg)
	c.MaxWindowed = maxWindowedArtifacts * 2
	for i := 0; i < maxWindowedArtifacts*2; i++ {
		c.WindowedPageRank(temporal.Window{Since: int64(i), Until: int64(i) + 100})
	}
	if st := c.Stats(); st.WindowedArtifacts != maxWindowedArtifacts*2 {
		t.Fatalf("artifacts = %d, want %d (raised cap ignored)", st.WindowedArtifacts, maxWindowedArtifacts*2)
	}
	c2 := New(kg)
	c2.MaxWindowed = 2
	for i := 0; i < 10; i++ {
		c2.WindowedPageRank(temporal.Window{Since: int64(i), Until: int64(i) + 100})
	}
	if st := c2.Stats(); st.WindowedArtifacts != 2 {
		t.Fatalf("artifacts = %d, want 2 (lowered cap ignored)", st.WindowedArtifacts)
	}
}
