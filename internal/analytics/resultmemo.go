package analytics

import (
	"container/list"
	"sync"
)

// ResultMemoStats snapshots a ResultMemo's counters.
type ResultMemoStats struct {
	// Hits counts lookups served from a fresh cached value.
	Hits uint64
	// Misses counts lookups that ran compute.
	Misses uint64
	// Coalesced counts lookups served by waiting on another caller's
	// in-flight compute instead of running their own (singleflight).
	Coalesced uint64
	// Evictions counts LRU evictions at the entry cap.
	Evictions uint64
	// Entries is the current number of cached values.
	Entries int
}

// rmEntry is one cached value: its epoch, LRU position and singleflight
// channel (non-nil while one goroutine computes for this key).
type rmEntry[V any] struct {
	epoch  uint64
	valid  bool
	value  V
	flight chan struct{}
	elem   *list.Element // value: the string key
}

// ResultMemo is a bounded, epoch-aware, string-keyed memo with singleflight:
// the generalization of this package's per-artifact memo to an open key
// space (the plan layer keys it by normalized plan strings; the epoch is the
// graph's mutation epoch). A cached value is fresh for a key when it was
// computed at an epoch within maxLag of the requested one; staler entries
// recompute in place. Entries beyond maxEntries evict least-recently-used.
// Failed computes are never cached. All methods are safe for concurrent use.
//
// It is generic over the value type so this package — which must not import
// its consumers — can host the cache for any layer above it.
type ResultMemo[V any] struct {
	mu         sync.Mutex
	maxEntries int
	maxLag     uint64
	entries    map[string]*rmEntry[V]
	lru        *list.List // of string keys; front = most recently used

	hits, misses, coalesced, evictions uint64
}

// NewResultMemo returns a memo holding at most maxEntries values (<= 0
// means 256) serving entries up to maxLag epochs stale (0 = epoch-exact,
// which is what replica byte-identity at equal epochs requires).
func NewResultMemo[V any](maxEntries int, maxLag uint64) *ResultMemo[V] {
	if maxEntries <= 0 {
		maxEntries = 256
	}
	return &ResultMemo[V]{
		maxEntries: maxEntries,
		maxLag:     maxLag,
		entries:    make(map[string]*rmEntry[V]),
		lru:        list.New(),
	}
}

// Get returns the value for key at epoch now, computing it at most once per
// epoch change across concurrent callers. hit reports whether a cached (or
// coalesced in-flight) value was served without this caller computing.
// Errors propagate to the caller that computed and are not cached; waiters
// observing a failed flight retry the compute themselves.
func (m *ResultMemo[V]) Get(now uint64, key string, compute func() (V, error)) (v V, hit bool, err error) {
	m.mu.Lock()
	waited := false
	for {
		e := m.entries[key]
		if e == nil {
			break
		}
		// e.epoch > now happens when another flight stored a newer value
		// while we waited — newer than requested is always fresh enough.
		if e.valid && (e.epoch >= now || now-e.epoch <= m.maxLag) {
			m.lru.MoveToFront(e.elem)
			if waited {
				m.coalesced++
			} else {
				m.hits++
			}
			v = e.value
			m.mu.Unlock()
			return v, true, nil
		}
		if e.flight == nil {
			break
		}
		ch := e.flight
		m.mu.Unlock()
		<-ch
		waited = true
		m.mu.Lock()
	}

	e := m.entries[key]
	if e == nil {
		e = &rmEntry[V]{}
		e.elem = m.lru.PushFront(key)
		m.entries[key] = e
		m.evictLocked()
	} else {
		m.lru.MoveToFront(e.elem)
	}
	ch := make(chan struct{})
	e.flight = ch
	m.misses++
	m.mu.Unlock()

	ok := false
	defer func() {
		// Release waiters even if compute panicked; store only on success.
		m.mu.Lock()
		if ok && (!e.valid || e.epoch <= now) {
			e.value, e.epoch, e.valid = v, now, true
		}
		e.flight = nil
		close(ch)
		m.mu.Unlock()
	}()
	v, err = compute()
	ok = err == nil
	return v, false, err
}

// Peek reports whether a fresh value for key exists at epoch now, without
// touching LRU order or counters.
func (m *ResultMemo[V]) Peek(now uint64, key string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	e := m.entries[key]
	return e != nil && e.valid && (e.epoch >= now || now-e.epoch <= m.maxLag)
}

// evictLocked drops least-recently-used entries beyond the cap. Entries with
// a compute in flight are skipped — evicting one would orphan its waiters'
// singleflight — so the map can transiently exceed the cap by the number of
// concurrent flights.
func (m *ResultMemo[V]) evictLocked() {
	for el := m.lru.Back(); el != nil && m.lru.Len() > m.maxEntries; {
		prev := el.Prev()
		key := el.Value.(string)
		if e := m.entries[key]; e != nil && e.flight == nil {
			m.lru.Remove(el)
			delete(m.entries, key)
			m.evictions++
		}
		el = prev
	}
}

// Stats snapshots the memo's counters.
func (m *ResultMemo[V]) Stats() ResultMemoStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return ResultMemoStats{
		Hits:      m.hits,
		Misses:    m.misses,
		Coalesced: m.coalesced,
		Evictions: m.evictions,
		Entries:   len(m.entries),
	}
}
