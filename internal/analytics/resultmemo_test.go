package analytics

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestResultMemoHitAtSameEpoch(t *testing.T) {
	m := NewResultMemo[string](8, 0)
	computes := 0
	get := func(epoch uint64, key string) string {
		v, _, err := m.Get(epoch, key, func() (string, error) {
			computes++
			return fmt.Sprintf("%s@%d", key, epoch), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	if v := get(1, "k"); v != "k@1" {
		t.Fatalf("got %q", v)
	}
	if v := get(1, "k"); v != "k@1" {
		t.Fatalf("got %q", v)
	}
	if computes != 1 {
		t.Fatalf("computes = %d, want 1", computes)
	}
	// Epoch moved: recompute.
	if v := get(2, "k"); v != "k@2" {
		t.Fatalf("got %q", v)
	}
	if computes != 2 {
		t.Fatalf("computes = %d, want 2", computes)
	}
	st := m.Stats()
	if st.Hits != 1 || st.Misses != 2 {
		t.Fatalf("stats = %+v, want 1 hit / 2 misses", st)
	}
}

func TestResultMemoMaxLag(t *testing.T) {
	m := NewResultMemo[int](8, 3)
	computes := 0
	get := func(epoch uint64) int {
		v, _, _ := m.Get(epoch, "k", func() (int, error) {
			computes++
			return int(epoch), nil
		})
		return v
	}
	if get(10) != 10 || get(13) != 10 {
		t.Fatal("within-lag read must serve the cached value")
	}
	if computes != 1 {
		t.Fatalf("computes = %d, want 1", computes)
	}
	if get(14) != 14 {
		t.Fatal("beyond-lag read must recompute")
	}
	if computes != 2 {
		t.Fatalf("computes = %d, want 2", computes)
	}
	// Epoch-exact memo: any epoch move recomputes.
	exact := NewResultMemo[int](8, 0)
	n := 0
	exact.Get(5, "k", func() (int, error) { n++; return 0, nil })
	exact.Get(6, "k", func() (int, error) { n++; return 0, nil })
	if n != 2 {
		t.Fatalf("epoch-exact computes = %d, want 2", n)
	}
}

func TestResultMemoLRUEviction(t *testing.T) {
	m := NewResultMemo[int](2, 0)
	compute := func(v int) func() (int, error) {
		return func() (int, error) { return v, nil }
	}
	m.Get(1, "a", compute(1))
	m.Get(1, "b", compute(2))
	m.Get(1, "a", compute(0)) // refresh a's recency
	m.Get(1, "c", compute(3)) // evicts b, the LRU
	if !m.Peek(1, "a") || !m.Peek(1, "c") {
		t.Fatal("recently used entries were evicted")
	}
	if m.Peek(1, "b") {
		t.Fatal("LRU entry survived past the cap")
	}
	st := m.Stats()
	if st.Entries != 2 || st.Evictions != 1 {
		t.Fatalf("stats = %+v, want 2 entries / 1 eviction", st)
	}
}

func TestResultMemoSingleflight(t *testing.T) {
	m := NewResultMemo[int](8, 0)
	var computes atomic.Int32
	gate := make(chan struct{})
	const workers = 8
	var wg sync.WaitGroup
	results := make([]int, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _, err := m.Get(7, "k", func() (int, error) {
				computes.Add(1)
				<-gate
				return 42, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = v
		}(i)
	}
	close(gate)
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Fatalf("computes = %d, want 1 (singleflight)", n)
	}
	for i, v := range results {
		if v != 42 {
			t.Fatalf("worker %d got %d", i, v)
		}
	}
	st := m.Stats()
	if st.Misses != 1 {
		t.Fatalf("misses = %d, want 1", st.Misses)
	}
	if st.Hits+st.Coalesced != workers-1 {
		t.Fatalf("hits+coalesced = %d, want %d", st.Hits+st.Coalesced, workers-1)
	}
}

func TestResultMemoErrorsNotCached(t *testing.T) {
	m := NewResultMemo[int](8, 0)
	boom := errors.New("boom")
	if _, _, err := m.Get(1, "k", func() (int, error) { return 0, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if m.Peek(1, "k") {
		t.Fatal("failed compute was cached")
	}
	v, hit, err := m.Get(1, "k", func() (int, error) { return 9, nil })
	if err != nil || hit || v != 9 {
		t.Fatalf("retry after error: v=%d hit=%v err=%v", v, hit, err)
	}
	if !m.Peek(1, "k") {
		t.Fatal("successful retry not cached")
	}
}

func TestResultMemoNewerEpochServesWaiters(t *testing.T) {
	// A value stored at a newer epoch than requested is fresh enough — the
	// memo must not recompute for an older "now" (mirrors memo.get).
	m := NewResultMemo[int](8, 0)
	computes := 0
	m.Get(9, "k", func() (int, error) { computes++; return 99, nil })
	v, hit, _ := m.Get(7, "k", func() (int, error) { computes++; return 77, nil })
	if !hit || v != 99 || computes != 1 {
		t.Fatalf("older-epoch read: v=%d hit=%v computes=%d", v, hit, computes)
	}
}
