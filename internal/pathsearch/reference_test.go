package pathsearch

import (
	"reflect"
	"sort"
	"testing"

	"nous/internal/graph"
)

// This file pins the allocation-light linked-node search to the seed
// implementation's exact semantics: refPartial/refTopK/refBFS reproduce the
// original per-expansion deep-copy algorithm verbatim, and the tests demand
// byte-identical results on deterministic fixtures.

type refPartial struct {
	verts   []graph.VertexID
	edges   []graph.Edge
	visited map[graph.VertexID]bool
	divSum  float64
}

func (s *Searcher) refTopK(src, dst graph.VertexID, opt Options) []Path {
	opt = opt.withDefaults()
	if !s.g.HasVertex(src) || !s.g.HasVertex(dst) || src == dst {
		return nil
	}
	topicOf := s.topicsMap()
	start := refPartial{
		verts:   []graph.VertexID{src},
		visited: map[graph.VertexID]bool{src: true},
	}
	frontier := []refPartial{start}
	var found []Path
	seen := map[string]bool{}
	for depth := 0; depth < opt.MaxDepth && len(frontier) > 0; depth++ {
		type scoredRef struct {
			p         refPartial
			lookahead float64
		}
		var next []scoredRef
		for _, p := range frontier {
			cur := p.verts[len(p.verts)-1]
			for _, e := range s.g.Edges(cur) {
				nb := e.Dst
				if nb == cur {
					nb = e.Src
				}
				if p.visited[nb] {
					continue
				}
				step := divergence(topicOf, cur, nb)
				np := refPartial{
					verts:   append(append([]graph.VertexID{}, p.verts...), nb),
					edges:   append(append([]graph.Edge{}, p.edges...), e),
					visited: map[graph.VertexID]bool{},
					divSum:  p.divSum + step,
				}
				for v := range p.visited {
					np.visited[v] = true
				}
				np.visited[nb] = true
				if nb == dst {
					if opt.Predicate == "" || refHasLabel(np.edges, opt.Predicate) {
						path := Path{Vertices: np.verts, Edges: np.edges,
							Coherence: np.divSum / float64(len(np.edges))}
						k := pathKey(path)
						if !seen[k] {
							seen[k] = true
							found = append(found, path)
						}
					}
					continue
				}
				next = append(next, scoredRef{p: np, lookahead: np.divSum + divergence(topicOf, nb, dst)})
			}
		}
		sort.SliceStable(next, func(i, j int) bool {
			if next[i].lookahead != next[j].lookahead {
				return next[i].lookahead < next[j].lookahead
			}
			return lessVerts(next[i].p.verts, next[j].p.verts)
		})
		if len(next) > opt.Beam {
			next = next[:opt.Beam]
		}
		frontier = frontier[:0]
		for _, sc := range next {
			frontier = append(frontier, sc.p)
		}
	}
	sort.SliceStable(found, func(i, j int) bool {
		if found[i].Coherence != found[j].Coherence {
			return found[i].Coherence < found[j].Coherence
		}
		if len(found[i].Edges) != len(found[j].Edges) {
			return len(found[i].Edges) < len(found[j].Edges)
		}
		return lessVerts(found[i].Vertices, found[j].Vertices)
	})
	if len(found) > opt.K {
		found = found[:opt.K]
	}
	return found
}

func (s *Searcher) refBFS(src, dst graph.VertexID, opt Options) []Path {
	opt = opt.withDefaults()
	if !s.g.HasVertex(src) || !s.g.HasVertex(dst) || src == dst {
		return nil
	}
	topicOf := s.topicsMap()
	var found []Path
	seen := map[string]bool{}
	frontier := []refPartial{{
		verts:   []graph.VertexID{src},
		visited: map[graph.VertexID]bool{src: true},
	}}
	for depth := 0; depth < opt.MaxDepth && len(frontier) > 0; depth++ {
		var next []refPartial
		for _, p := range frontier {
			cur := p.verts[len(p.verts)-1]
			for _, e := range s.g.Edges(cur) {
				nb := e.Dst
				if nb == cur {
					nb = e.Src
				}
				if p.visited[nb] {
					continue
				}
				np := refPartial{
					verts:   append(append([]graph.VertexID{}, p.verts...), nb),
					edges:   append(append([]graph.Edge{}, p.edges...), e),
					visited: map[graph.VertexID]bool{},
					divSum:  p.divSum + divergence(topicOf, cur, nb),
				}
				for v := range p.visited {
					np.visited[v] = true
				}
				np.visited[nb] = true
				if nb == dst {
					if opt.Predicate == "" || refHasLabel(np.edges, opt.Predicate) {
						path := Path{Vertices: np.verts, Edges: np.edges,
							Coherence: np.divSum / float64(len(np.edges))}
						k := pathKey(path)
						if !seen[k] {
							seen[k] = true
							found = append(found, path)
						}
					}
					continue
				}
				next = append(next, np)
			}
		}
		sort.SliceStable(next, func(i, j int) bool { return lessVerts(next[i].verts, next[j].verts) })
		if len(next) > opt.Beam*4 {
			next = next[:opt.Beam*4]
		}
		frontier = next
		if len(found) >= opt.K {
			break
		}
	}
	sort.SliceStable(found, func(i, j int) bool {
		if len(found[i].Edges) != len(found[j].Edges) {
			return len(found[i].Edges) < len(found[j].Edges)
		}
		return lessVerts(found[i].Vertices, found[j].Vertices)
	})
	if len(found) > opt.K {
		found = found[:opt.K]
	}
	return found
}

func refHasLabel(edges []graph.Edge, label string) bool {
	for _, e := range edges {
		if e.Label == label {
			return true
		}
	}
	return false
}

// randomFixture builds a deterministic dense multigraph with topic vectors
// via a hand-rolled LCG (no global rand dependence).
func randomFixture(nVerts, nEdges int, seed uint64) (*graph.Graph, map[graph.VertexID][]float64) {
	g := graph.New()
	topicOf := map[graph.VertexID][]float64{}
	labels := []string{"acquired", "invests", "suppliesTo", "partnersWith"}
	state := seed
	next := func(mod int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int((state >> 33) % uint64(mod))
	}
	ids := make([]graph.VertexID, nVerts)
	for i := range ids {
		ids[i] = g.AddVertex("Company")
		a := float64(next(100)) / 100
		topicOf[ids[i]] = []float64{a, 1 - a}
	}
	for i := 0; i < nEdges; i++ {
		a := ids[next(nVerts)]
		b := ids[next(nVerts)]
		if a == b {
			continue
		}
		if _, err := g.AddEdge(a, b, labels[next(len(labels))]); err != nil {
			panic(err)
		}
	}
	return g, topicOf
}

func TestTopKMatchesSeedReference(t *testing.T) {
	cases := []struct {
		name string
		opt  Options
	}{
		{"defaults", Options{}},
		{"deep", Options{K: 5, MaxDepth: 6, Beam: 16}},
		{"narrowBeam", Options{K: 10, MaxDepth: 4, Beam: 4}},
		{"predicate", Options{K: 5, MaxDepth: 5, Predicate: "invests"}},
	}
	for _, seed := range []uint64{1, 7, 42} {
		g, topicOf := randomFixture(30, 120, seed)
		s := New(g, topicOf)
		ids := make([]graph.VertexID, 0, 30)
		for i := 0; i < 30; i++ {
			ids = append(ids, graph.VertexID(i))
		}
		for _, tc := range cases {
			for _, pair := range [][2]graph.VertexID{{ids[0], ids[29]}, {ids[3], ids[17]}, {ids[10], ids[5]}} {
				got := s.TopK(pair[0], pair[1], tc.opt)
				want := s.refTopK(pair[0], pair[1], tc.opt)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("seed=%d case=%s %d->%d:\n got %v\nwant %v", seed, tc.name, pair[0], pair[1], got, want)
				}
			}
		}
	}
	// The planted evaluation fixture too.
	g, src, dst, _, _, _, topicOf := plantedGraph()
	s := New(g, topicOf)
	for _, opt := range []Options{{}, {K: 5, MaxDepth: 4}, {K: 5, MaxDepth: 4, Predicate: "acquired"}} {
		if got, want := s.TopK(src, dst, opt), s.refTopK(src, dst, opt); !reflect.DeepEqual(got, want) {
			t.Fatalf("planted fixture diverged:\n got %v\nwant %v", got, want)
		}
	}
}

func TestBFSMatchesSeedReference(t *testing.T) {
	for _, seed := range []uint64{3, 11} {
		g, topicOf := randomFixture(25, 100, seed)
		s := New(g, topicOf)
		for _, opt := range []Options{{}, {K: 8, MaxDepth: 5, Beam: 8}, {K: 3, MaxDepth: 4, Predicate: "acquired"}} {
			for _, pair := range [][2]graph.VertexID{{0, 24}, {5, 13}} {
				got := s.BFSPaths(pair[0], pair[1], opt)
				want := s.refBFS(pair[0], pair[1], opt)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("seed=%d %d->%d:\n got %v\nwant %v", seed, pair[0], pair[1], got, want)
				}
			}
		}
	}
	g, src, dst, _, _, _, topicOf := plantedGraph()
	s := New(g, topicOf)
	if got, want := s.BFSPaths(src, dst, Options{K: 3, MaxDepth: 4}), s.refBFS(src, dst, Options{K: 3, MaxDepth: 4}); !reflect.DeepEqual(got, want) {
		t.Fatalf("planted fixture diverged:\n got %v\nwant %v", got, want)
	}
}

// BenchmarkTopKAllocs quantifies the allocation savings of the linked-node
// beam against the seed's per-expansion deep copies.
func BenchmarkTopKAllocs(b *testing.B) {
	g, topicOf := randomFixture(60, 400, 9)
	s := New(g, topicOf)
	b.Run("linked", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s.TopK(0, 59, Options{K: 3, MaxDepth: 4})
		}
	})
	b.Run("reference", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s.refTopK(0, 59, Options{K: 3, MaxDepth: 4})
		}
	})
}
