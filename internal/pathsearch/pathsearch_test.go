package pathsearch

import (
	"testing"

	"nous/internal/graph"
)

// plantedGraph builds the C4 evaluation scenario: a 3-hop on-topic path
// src→a→b→dst (all drone-topic) and a 2-hop off-topic shortcut src→hub→dst
// through a high-degree finance hub.
//
// Topic space: [drone, finance].
func plantedGraph() (g *graph.Graph, src, dst, a, b, hub graph.VertexID, topicOf map[graph.VertexID][]float64) {
	g = graph.New()
	src = g.AddVertex("Company")
	dst = g.AddVertex("Company")
	a = g.AddVertex("Company")
	b = g.AddVertex("Company")
	hub = g.AddVertex("Company")

	mustEdge(g, src, a, "partnersWith")
	mustEdge(g, a, b, "suppliesTo")
	mustEdge(g, b, dst, "acquired")
	mustEdge(g, src, hub, "invests")
	mustEdge(g, hub, dst, "invests")

	topicOf = map[graph.VertexID][]float64{
		src: {0.9, 0.1},
		a:   {0.85, 0.15},
		b:   {0.9, 0.1},
		dst: {0.95, 0.05},
		hub: {0.05, 0.95},
	}
	// hub is high-degree: attach noise spokes
	for i := 0; i < 10; i++ {
		v := g.AddVertex("Company")
		mustEdge(g, hub, v, "invests")
		topicOf[v] = []float64{0.5, 0.5}
	}
	return
}

func mustEdge(g *graph.Graph, a, b graph.VertexID, label string) {
	if _, err := g.AddEdge(a, b, label); err != nil {
		panic(err)
	}
}

func TestCoherencePrefersOnTopicPath(t *testing.T) {
	g, src, dst, a, b, hub, topicOf := plantedGraph()
	s := New(g, topicOf)
	paths := s.TopK(src, dst, Options{K: 3, MaxDepth: 4})
	if len(paths) < 2 {
		t.Fatalf("found %d paths, want >= 2", len(paths))
	}
	best := paths[0]
	want := []graph.VertexID{src, a, b, dst}
	if !equalVerts(best.Vertices, want) {
		t.Fatalf("best path = %v (coherence %.4f), want planted %v", best.Vertices, best.Coherence, want)
	}
	// The hub path must rank worse.
	for i, p := range paths {
		if containsVert(p.Vertices, hub) && i == 0 {
			t.Fatal("hub shortcut ranked first")
		}
	}
}

func TestBFSBaselinePrefersShortPath(t *testing.T) {
	g, src, dst, _, _, hub, topicOf := plantedGraph()
	s := New(g, topicOf)
	paths := s.BFSPaths(src, dst, Options{K: 3, MaxDepth: 4})
	if len(paths) == 0 {
		t.Fatal("BFS found nothing")
	}
	if !containsVert(paths[0].Vertices, hub) {
		t.Fatalf("BFS best path should take the 2-hop hub shortcut, got %v", paths[0].Vertices)
	}
	if paths[0].Len() != 2 {
		t.Fatalf("BFS best path length = %d, want 2", paths[0].Len())
	}
}

func TestPredicateConstraint(t *testing.T) {
	g, src, dst, _, _, _, topicOf := plantedGraph()
	s := New(g, topicOf)
	paths := s.TopK(src, dst, Options{K: 5, MaxDepth: 4, Predicate: "acquired"})
	if len(paths) == 0 {
		t.Fatal("no constrained paths")
	}
	for _, p := range paths {
		ok := false
		for _, e := range p.Edges {
			if e.Label == "acquired" {
				ok = true
			}
		}
		if !ok {
			t.Fatalf("path %v violates the predicate constraint", p.Vertices)
		}
	}
}

func TestPathsAreValidAndAcyclic(t *testing.T) {
	g, src, dst, _, _, _, topicOf := plantedGraph()
	s := New(g, topicOf)
	for _, p := range s.TopK(src, dst, Options{K: 5, MaxDepth: 4}) {
		if p.Vertices[0] != src || p.Vertices[len(p.Vertices)-1] != dst {
			t.Fatalf("path endpoints wrong: %v", p.Vertices)
		}
		if len(p.Edges) != len(p.Vertices)-1 {
			t.Fatalf("edge/vertex count mismatch: %v", p)
		}
		seen := map[graph.VertexID]bool{}
		for _, v := range p.Vertices {
			if seen[v] {
				t.Fatalf("cycle in path %v", p.Vertices)
			}
			seen[v] = true
		}
		// each edge must connect consecutive vertices (either direction)
		for i, e := range p.Edges {
			u, v := p.Vertices[i], p.Vertices[i+1]
			if !(e.Src == u && e.Dst == v) && !(e.Src == v && e.Dst == u) {
				t.Fatalf("edge %d does not connect %d-%d: %+v", i, u, v, e)
			}
		}
	}
}

func TestNoPathCases(t *testing.T) {
	g := graph.New()
	a := g.AddVertex("X")
	b := g.AddVertex("X")
	c := g.AddVertex("X") // isolated
	mustEdge(g, a, b, "r")
	s := New(g, nil)
	if got := s.TopK(a, c, Options{}); len(got) != 0 {
		t.Errorf("path to isolated vertex: %v", got)
	}
	if got := s.TopK(a, a, Options{}); len(got) != 0 {
		t.Errorf("self path: %v", got)
	}
	if got := s.TopK(a, 999, Options{}); len(got) != 0 {
		t.Errorf("path to missing vertex: %v", got)
	}
}

func TestMaxDepthRespected(t *testing.T) {
	g := graph.New()
	var ids []graph.VertexID
	for i := 0; i < 6; i++ {
		ids = append(ids, g.AddVertex("X"))
	}
	for i := 0; i+1 < len(ids); i++ {
		mustEdge(g, ids[i], ids[i+1], "r")
	}
	s := New(g, nil)
	if got := s.TopK(ids[0], ids[5], Options{MaxDepth: 3}); len(got) != 0 {
		t.Fatalf("found %d paths beyond MaxDepth", len(got))
	}
	if got := s.TopK(ids[0], ids[5], Options{MaxDepth: 5}); len(got) != 1 {
		t.Fatalf("expected exactly the chain path, got %d", len(got))
	}
}

func TestNilTopicsDegradesGracefully(t *testing.T) {
	g, src, dst, _, _, _, _ := plantedGraph()
	s := New(g, nil)
	paths := s.TopK(src, dst, Options{K: 3, MaxDepth: 4})
	if len(paths) == 0 {
		t.Fatal("no paths without topics")
	}
	for _, p := range paths {
		if p.Coherence != 0 {
			t.Fatalf("coherence without topics = %v", p.Coherence)
		}
	}
}

func TestUndirectedTraversal(t *testing.T) {
	// dst→mid edge points backwards; search must still find src→mid→dst.
	g := graph.New()
	src := g.AddVertex("X")
	mid := g.AddVertex("X")
	dst := g.AddVertex("X")
	mustEdge(g, src, mid, "r")
	mustEdge(g, dst, mid, "r")
	s := New(g, nil)
	paths := s.TopK(src, dst, Options{K: 1, MaxDepth: 3})
	if len(paths) != 1 || paths[0].Len() != 2 {
		t.Fatalf("undirected traversal failed: %+v", paths)
	}
}

func equalVerts(a, b []graph.VertexID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func containsVert(vs []graph.VertexID, x graph.VertexID) bool {
	for _, v := range vs {
		if v == x {
			return true
		}
	}
	return false
}

func BenchmarkTopKPaths(b *testing.B) {
	g, src, dst, _, _, _, topicOf := plantedGraph()
	s := New(g, topicOf)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.TopK(src, dst, Options{K: 3, MaxDepth: 4})
	}
}

// TestSetTopicsDuringQueries exercises a topic refit racing live path
// queries (the Pipeline.BuildTopics-while-serving scenario); run under
// -race it pins the atomic map swap. Each query must use one consistent
// map: results always match a serial run against either the old or the new
// vectors.
func TestSetTopicsDuringQueries(t *testing.T) {
	g, src, dst, _, _, _, topicOf := plantedGraph()
	s := New(g, topicOf)
	swapped := map[graph.VertexID][]float64{}
	for id, v := range topicOf {
		swapped[id] = []float64{v[1], v[0]} // invert topics for a visible change
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			s.SetTopics(topicOf)
			s.SetTopics(swapped)
		}
	}()
	for i := 0; i < 100; i++ {
		if got := s.TopK(src, dst, Options{K: 3}); len(got) == 0 {
			t.Fatal("no paths during topic swaps")
		}
		if got := s.BFSPaths(src, dst, Options{K: 3}); len(got) == 0 {
			t.Fatal("no BFS paths during topic swaps")
		}
	}
	<-done
}
