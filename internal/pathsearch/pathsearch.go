// Package pathsearch implements NOUS's question-answering graph search
// (§3.6): given a source entity, a target entity and an optional
// relationship constraint, it returns the top-K paths explaining how the
// two are related. The walk performs a look-ahead at every hop — candidate
// nodes are ordered by the Jensen–Shannon divergence between their LDA topic
// distribution and the target's — and every complete path is scored by its
// topic coherence (mean divergence along the path, lower is better). A
// breadth-first shortest-path baseline is provided for the evaluation.
package pathsearch

import (
	"sort"

	"nous/internal/graph"
	"nous/internal/topics"
)

// Path is one source→target explanation.
type Path struct {
	Vertices []graph.VertexID
	Edges    []graph.Edge
	// Coherence is the mean topic divergence between consecutive vertices
	// (lower = more coherent). Zero when no topic model is attached.
	Coherence float64
}

// Len returns the number of hops.
func (p Path) Len() int { return len(p.Edges) }

// Options tunes the search.
type Options struct {
	K        int // number of paths to return (default 3)
	MaxDepth int // maximum hops (default 4)
	Beam     int // beam width per depth (default 32)
	// Predicate, when set, requires the path to traverse at least one edge
	// with this label (the paper's "relationship constraint").
	Predicate string
}

func (o Options) withDefaults() Options {
	if o.K <= 0 {
		o.K = 3
	}
	if o.MaxDepth <= 0 {
		o.MaxDepth = 4
	}
	if o.Beam <= 0 {
		o.Beam = 32
	}
	return o
}

// Searcher runs coherence-guided path queries over a property graph.
type Searcher struct {
	g       *graph.Graph
	topicOf map[graph.VertexID][]float64
}

// New returns a searcher. topicOf maps vertices to LDA topic distributions;
// it may be nil, in which case the search degrades to an uninformed beam.
func New(g *graph.Graph, topicOf map[graph.VertexID][]float64) *Searcher {
	return &Searcher{g: g, topicOf: topicOf}
}

// divergence returns the topic JS divergence between two vertices, or 0
// when either lacks a topic vector.
func (s *Searcher) divergence(a, b graph.VertexID) float64 {
	ta, ok1 := s.topicOf[a]
	tb, ok2 := s.topicOf[b]
	if !ok1 || !ok2 || len(ta) != len(tb) {
		return 0
	}
	return topics.JSDivergence(ta, tb)
}

// partial is a path under construction.
type partial struct {
	verts   []graph.VertexID
	edges   []graph.Edge
	visited map[graph.VertexID]bool
	divSum  float64
}

// TopK returns up to K paths from src to dst ordered by ascending coherence
// (ties: shorter first, then lexicographic vertex order).
func (s *Searcher) TopK(src, dst graph.VertexID, opt Options) []Path {
	opt = opt.withDefaults()
	if !s.g.HasVertex(src) || !s.g.HasVertex(dst) || src == dst {
		return nil
	}

	start := partial{
		verts:   []graph.VertexID{src},
		edges:   nil,
		visited: map[graph.VertexID]bool{src: true},
	}
	frontier := []partial{start}
	var found []Path
	seen := map[string]bool{}

	for depth := 0; depth < opt.MaxDepth && len(frontier) > 0; depth++ {
		type scored struct {
			p         partial
			lookahead float64
		}
		var next []scored
		for _, p := range frontier {
			cur := p.verts[len(p.verts)-1]
			for _, e := range s.g.Edges(cur) {
				nb := e.Dst
				if nb == cur {
					nb = e.Src
				}
				if p.visited[nb] {
					continue
				}
				step := s.divergence(cur, nb)
				np := partial{
					verts:   append(append([]graph.VertexID{}, p.verts...), nb),
					edges:   append(append([]graph.Edge{}, p.edges...), e),
					visited: map[graph.VertexID]bool{},
					divSum:  p.divSum + step,
				}
				for v := range p.visited {
					np.visited[v] = true
				}
				np.visited[nb] = true

				if nb == dst {
					if opt.Predicate == "" || hasLabel(np.edges, opt.Predicate) {
						path := Path{
							Vertices:  np.verts,
							Edges:     np.edges,
							Coherence: np.divSum / float64(len(np.edges)),
						}
						k := pathKey(path)
						if !seen[k] {
							seen[k] = true
							found = append(found, path)
						}
					}
					continue
				}
				next = append(next, scored{p: np, lookahead: np.divSum + s.divergence(nb, dst)})
			}
		}
		// Look-ahead pruning: keep the Beam candidates closest (in topic
		// space) to the target.
		sort.SliceStable(next, func(i, j int) bool {
			if next[i].lookahead != next[j].lookahead {
				return next[i].lookahead < next[j].lookahead
			}
			return lessVerts(next[i].p.verts, next[j].p.verts)
		})
		if len(next) > opt.Beam {
			next = next[:opt.Beam]
		}
		frontier = frontier[:0]
		for _, sc := range next {
			frontier = append(frontier, sc.p)
		}
	}

	sort.SliceStable(found, func(i, j int) bool {
		if found[i].Coherence != found[j].Coherence {
			return found[i].Coherence < found[j].Coherence
		}
		if len(found[i].Edges) != len(found[j].Edges) {
			return len(found[i].Edges) < len(found[j].Edges)
		}
		return lessVerts(found[i].Vertices, found[j].Vertices)
	})
	if len(found) > opt.K {
		found = found[:opt.K]
	}
	return found
}

// BFSPaths is the uninformed baseline: up to K shortest (fewest-hop) paths
// from src to dst, ranked by length then lexicographic order. Coherence is
// filled in from the searcher's topic map for comparison but does not
// influence the ranking.
func (s *Searcher) BFSPaths(src, dst graph.VertexID, opt Options) []Path {
	opt = opt.withDefaults()
	if !s.g.HasVertex(src) || !s.g.HasVertex(dst) || src == dst {
		return nil
	}
	var found []Path
	seen := map[string]bool{}
	frontier := []partial{{
		verts:   []graph.VertexID{src},
		visited: map[graph.VertexID]bool{src: true},
	}}
	for depth := 0; depth < opt.MaxDepth && len(frontier) > 0; depth++ {
		var next []partial
		for _, p := range frontier {
			cur := p.verts[len(p.verts)-1]
			for _, e := range s.g.Edges(cur) {
				nb := e.Dst
				if nb == cur {
					nb = e.Src
				}
				if p.visited[nb] {
					continue
				}
				np := partial{
					verts:   append(append([]graph.VertexID{}, p.verts...), nb),
					edges:   append(append([]graph.Edge{}, p.edges...), e),
					visited: map[graph.VertexID]bool{},
					divSum:  p.divSum + s.divergence(cur, nb),
				}
				for v := range p.visited {
					np.visited[v] = true
				}
				np.visited[nb] = true
				if nb == dst {
					if opt.Predicate == "" || hasLabel(np.edges, opt.Predicate) {
						path := Path{Vertices: np.verts, Edges: np.edges,
							Coherence: np.divSum / float64(len(np.edges))}
						k := pathKey(path)
						if !seen[k] {
							seen[k] = true
							found = append(found, path)
						}
					}
					continue
				}
				next = append(next, np)
			}
		}
		// Unbounded BFS fan-out explodes on dense graphs; cap like GraphX
		// jobs cap their frontier, but without topic guidance (by vertex
		// order, which is insertion order — a neutral choice).
		sort.SliceStable(next, func(i, j int) bool { return lessVerts(next[i].verts, next[j].verts) })
		if len(next) > opt.Beam*4 {
			next = next[:opt.Beam*4]
		}
		frontier = next
		if len(found) >= opt.K {
			break
		}
	}
	sort.SliceStable(found, func(i, j int) bool {
		if len(found[i].Edges) != len(found[j].Edges) {
			return len(found[i].Edges) < len(found[j].Edges)
		}
		return lessVerts(found[i].Vertices, found[j].Vertices)
	})
	if len(found) > opt.K {
		found = found[:opt.K]
	}
	return found
}

func hasLabel(edges []graph.Edge, label string) bool {
	for _, e := range edges {
		if e.Label == label {
			return true
		}
	}
	return false
}

func pathKey(p Path) string {
	key := make([]byte, 0, len(p.Edges)*8)
	for _, e := range p.Edges {
		id := e.ID
		for i := 0; i < 8; i++ {
			key = append(key, byte(id>>(8*i)))
		}
	}
	return string(key)
}

func lessVerts(a, b []graph.VertexID) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}
