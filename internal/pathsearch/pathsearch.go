// Package pathsearch implements NOUS's question-answering graph search
// (§3.6): given a source entity, a target entity and an optional
// relationship constraint, it returns the top-K paths explaining how the
// two are related. The walk performs a look-ahead at every hop — candidate
// nodes are ordered by the Jensen–Shannon divergence between their LDA topic
// distribution and the target's — and every complete path is scored by its
// topic coherence (mean divergence along the path, lower is better). A
// breadth-first shortest-path baseline is provided for the evaluation.
//
// The beam state is allocation-light: partial paths are immutable linked
// nodes sharing their prefixes (extending a path is one small allocation,
// not an O(depth) copy of vertex/edge slices), and the per-path visited set
// is a pooled bitset repopulated from the node chain — O(depth) marks per
// expansion instead of an O(depth) map copy per candidate.
package pathsearch

import (
	"sort"
	"sync"
	"sync/atomic"

	"nous/internal/graph"
	"nous/internal/graph/symtab"
	"nous/internal/temporal"
	"nous/internal/topics"
)

// Path is one source→target explanation.
type Path struct {
	Vertices []graph.VertexID
	Edges    []graph.Edge
	// Coherence is the mean topic divergence between consecutive vertices
	// (lower = more coherent). Zero when no topic model is attached.
	Coherence float64
}

// Len returns the number of hops.
func (p Path) Len() int { return len(p.Edges) }

// Options tunes the search.
type Options struct {
	K        int // number of paths to return (default 3)
	MaxDepth int // maximum hops (default 4)
	Beam     int // beam width per depth (default 32)
	// Predicate, when set, requires the path to traverse at least one edge
	// with this label (the paper's "relationship constraint").
	Predicate string
	// Window restricts traversal to edges visible in the time window:
	// curated edges always qualify, extracted edges only when their
	// timestamp lies in [Since, Until). The zero (unbounded) window is a
	// no-op and keeps the unwindowed search byte-identical.
	Window temporal.Window
}

func (o Options) withDefaults() Options {
	if o.K <= 0 {
		o.K = 3
	}
	if o.MaxDepth <= 0 {
		o.MaxDepth = 4
	}
	if o.Beam <= 0 {
		o.Beam = 32
	}
	return o
}

// Searcher runs coherence-guided path queries over a property graph. It is
// safe for concurrent use, including against a graph under mutation and
// across SetTopics swaps.
type Searcher struct {
	g *graph.Graph

	// topics holds the current topic map. Swapped atomically by SetTopics
	// so a topic refit never races in-flight queries; each map is read-only
	// once stored.
	topics atomic.Pointer[map[graph.VertexID][]float64]

	// visitedPool recycles per-query bitsets across queries.
	visitedPool sync.Pool
}

// New returns a searcher. topicOf maps vertices to LDA topic distributions;
// it may be nil, in which case the search degrades to an uninformed beam.
// The map must not be mutated after being handed over.
func New(g *graph.Graph, topicOf map[graph.VertexID][]float64) *Searcher {
	s := &Searcher{g: g}
	s.visitedPool.New = func() any { return &bitset{} }
	s.SetTopics(topicOf)
	return s
}

// SetTopics atomically replaces the topic map. In-flight queries keep the
// map they started with; new queries see the new one.
func (s *Searcher) SetTopics(topicOf map[graph.VertexID][]float64) {
	s.topics.Store(&topicOf)
}

// topicsMap snapshots the current topic map; a query captures it once so a
// concurrent SetTopics cannot change scoring mid-search.
func (s *Searcher) topicsMap() map[graph.VertexID][]float64 {
	return *s.topics.Load()
}

// divergence returns the topic JS divergence between two vertices, or 0
// when either lacks a topic vector.
func divergence(topicOf map[graph.VertexID][]float64, a, b graph.VertexID) float64 {
	ta, ok1 := topicOf[a]
	tb, ok2 := topicOf[b]
	if !ok1 || !ok2 || len(ta) != len(tb) {
		return 0
	}
	return topics.JSDivergence(ta, tb)
}

// pathEdge is the compact form a partial path stores per hop: enough to
// rank, deduplicate and constrain paths (ID, endpoints, interned predicate)
// without carrying a materialized graph.Edge — weights, timestamps and props
// are fetched once per *returned* path, not per beam candidate.
type pathEdge struct {
	id       graph.EdgeID
	src, dst graph.VertexID
	label    symtab.SymID
}

// pathNode is an immutable node in a prefix-sharing tree of partial paths.
// Extending a path allocates exactly one node; the tail shares every
// ancestor with its siblings.
type pathNode struct {
	parent *pathNode
	vert   graph.VertexID
	edge   pathEdge // edge connecting parent.vert to vert (zero at the root)
	depth  int      // hops from the root
	divSum float64
}

// materialize renders the node chain as a Path (without coherence), looking
// each edge up in the graph to fill the full record. An edge removed since
// it was traversed falls back to the fields the chain retained (ID,
// endpoints, predicate) — the path stays well-formed.
func (n *pathNode) materialize(g *graph.Graph) Path {
	verts := make([]graph.VertexID, n.depth+1)
	edges := make([]graph.Edge, n.depth)
	for m := n; m != nil; m = m.parent {
		verts[m.depth] = m.vert
		if m.depth > 0 {
			e, ok := g.Edge(m.edge.id)
			if !ok {
				e = graph.Edge{ID: m.edge.id, Src: m.edge.src, Dst: m.edge.dst,
					Label: symtab.Resolve(m.edge.label)}
			}
			edges[m.depth-1] = e
		}
	}
	return Path{Vertices: verts, Edges: edges}
}

// fillVerts writes the chain's vertex sequence into buf, which must have
// length n.depth+1.
func (n *pathNode) fillVerts(buf []graph.VertexID) {
	for m := n; m != nil; m = m.parent {
		buf[m.depth] = m.vert
	}
}

// hasLabel reports whether any edge on the chain carries the interned label.
func (n *pathNode) hasLabel(label symtab.SymID) bool {
	for m := n; m.parent != nil; m = m.parent {
		if m.edge.label == label {
			return true
		}
	}
	return false
}

// bitset is a growable visited set indexed by VertexID. Vertex IDs are
// assigned densely, so the backing array stays proportional to the graph.
type bitset struct {
	words []uint64
}

func (b *bitset) has(id graph.VertexID) bool {
	w := int(id >> 6)
	return w < len(b.words) && b.words[w]&(1<<(uint(id)&63)) != 0
}

func (b *bitset) set(id graph.VertexID) {
	w := int(id >> 6)
	for w >= len(b.words) {
		b.words = append(b.words, 0)
	}
	b.words[w] |= 1 << (uint(id) & 63)
}

func (b *bitset) clear(id graph.VertexID) {
	w := int(id >> 6)
	if w < len(b.words) {
		b.words[w] &^= 1 << (uint(id) & 63)
	}
}

// mark sets every vertex on the chain; unmark clears them. Together they
// let one pooled bitset serve every frontier node in turn.
func (b *bitset) mark(n *pathNode) {
	for m := n; m != nil; m = m.parent {
		b.set(m.vert)
	}
}

func (b *bitset) unmark(n *pathNode) {
	for m := n; m != nil; m = m.parent {
		b.clear(m.vert)
	}
}

// scored is one beam candidate with its materialized vertex sequence (for
// deterministic ordering) and look-ahead score.
type scored struct {
	n         *pathNode
	verts     []graph.VertexID
	lookahead float64
}

// expand grows every frontier node by one hop. Completed paths (reaching
// dst) are handed to complete; open extensions are returned as candidates
// with lookahead = divSum + divergence(tail, dst) when wantLookahead is set
// (TopK orders by it; BFS does not and skips the extra divergence per
// candidate). The visited bitset is repopulated per frontier node from its
// chain. Incident edges are snapshotted as compact slab projections into a
// scratch buffer so the vertex's shard lock is held only for the copy — no
// label-string or props materialization per candidate — not for the
// per-edge divergence math; a long expansion must not stall concurrent
// writers.
func (s *Searcher) expand(frontier []*pathNode, dst graph.VertexID, topicOf map[graph.VertexID][]float64, visited *bitset, win temporal.Window, wantLookahead bool, complete func(*pathNode)) []scored {
	var next []scored
	var edgeBuf []pathEdge
	windowed := win.Bounded()
	for _, p := range frontier {
		cur := p.vert
		visited.mark(p)
		edgeBuf = edgeBuf[:0]
		s.g.ForEachIncidentScan(cur, func(e *graph.EdgeScan) bool {
			if windowed && !win.ContainsScan(e) {
				return true // outside the time window: invisible to this query
			}
			edgeBuf = append(edgeBuf, pathEdge{id: e.ID, src: e.Src, dst: e.Dst, label: e.Label})
			return true
		})
		for _, e := range edgeBuf {
			nb := e.dst
			if nb == cur {
				nb = e.src
			}
			if visited.has(nb) {
				continue
			}
			np := &pathNode{
				parent: p,
				vert:   nb,
				edge:   e,
				depth:  p.depth + 1,
				divSum: p.divSum + divergence(topicOf, cur, nb),
			}
			if nb == dst {
				complete(np)
				continue
			}
			sc := scored{n: np}
			if wantLookahead {
				sc.lookahead = np.divSum + divergence(topicOf, nb, dst)
			}
			next = append(next, sc)
		}
		visited.unmark(p)
	}
	// Materialize vertex sequences for ordering out of one arena — a single
	// allocation per depth rather than one per candidate.
	if len(next) > 0 {
		total := 0
		for i := range next {
			total += next[i].n.depth + 1
		}
		arena := make([]graph.VertexID, total)
		off := 0
		for i := range next {
			end := off + next[i].n.depth + 1
			next[i].verts = arena[off:end]
			next[i].n.fillVerts(next[i].verts)
			off = end
		}
	}
	return next
}

// predConstraint resolves an Options.Predicate to its interned form.
// want=false means unconstrained; ok=false means the predicate string was
// never interned — no edge in any graph carries it, so no path can satisfy
// the constraint.
func predConstraint(predicate string) (sym symtab.SymID, want, ok bool) {
	if predicate == "" {
		return 0, false, true
	}
	sym, ok = symtab.Lookup(predicate)
	return sym, true, ok
}

// finish turns a completed chain into a deduplicated Path, honoring the
// predicate constraint.
func finish(np *pathNode, g *graph.Graph, pred symtab.SymID, wantPred bool, seen map[string]bool, found *[]Path) {
	if wantPred && !np.hasLabel(pred) {
		return
	}
	path := np.materialize(g)
	path.Coherence = np.divSum / float64(len(path.Edges))
	k := pathKey(path)
	if !seen[k] {
		seen[k] = true
		*found = append(*found, path)
	}
}

// TopK returns up to K paths from src to dst ordered by ascending coherence
// (ties: shorter first, then lexicographic vertex order).
func (s *Searcher) TopK(src, dst graph.VertexID, opt Options) []Path {
	opt = opt.withDefaults()
	if !s.g.HasVertex(src) || !s.g.HasVertex(dst) || src == dst {
		return nil
	}
	pred, wantPred, ok := predConstraint(opt.Predicate)
	if !ok {
		return nil // predicate never interned: no edge anywhere carries it
	}

	visited := s.visitedPool.Get().(*bitset)
	defer s.visitedPool.Put(visited)

	topicOf := s.topicsMap()
	frontier := []*pathNode{{vert: src}}
	var found []Path
	seen := map[string]bool{}

	for depth := 0; depth < opt.MaxDepth && len(frontier) > 0; depth++ {
		next := s.expand(frontier, dst, topicOf, visited, opt.Window, true, func(np *pathNode) {
			finish(np, s.g, pred, wantPred, seen, &found)
		})
		// Look-ahead pruning: keep the Beam candidates closest (in topic
		// space) to the target.
		sort.SliceStable(next, func(i, j int) bool {
			if next[i].lookahead != next[j].lookahead {
				return next[i].lookahead < next[j].lookahead
			}
			return lessVerts(next[i].verts, next[j].verts)
		})
		if len(next) > opt.Beam {
			next = next[:opt.Beam]
		}
		frontier = frontier[:0]
		for _, sc := range next {
			frontier = append(frontier, sc.n)
		}
	}

	sort.SliceStable(found, func(i, j int) bool {
		if found[i].Coherence != found[j].Coherence {
			return found[i].Coherence < found[j].Coherence
		}
		if len(found[i].Edges) != len(found[j].Edges) {
			return len(found[i].Edges) < len(found[j].Edges)
		}
		return lessVerts(found[i].Vertices, found[j].Vertices)
	})
	if len(found) > opt.K {
		found = found[:opt.K]
	}
	return found
}

// BFSPaths is the uninformed baseline: up to K shortest (fewest-hop) paths
// from src to dst, ranked by length then lexicographic order. Coherence is
// filled in from the searcher's topic map for comparison but does not
// influence the ranking.
func (s *Searcher) BFSPaths(src, dst graph.VertexID, opt Options) []Path {
	opt = opt.withDefaults()
	if !s.g.HasVertex(src) || !s.g.HasVertex(dst) || src == dst {
		return nil
	}
	pred, wantPred, ok := predConstraint(opt.Predicate)
	if !ok {
		return nil // predicate never interned: no edge anywhere carries it
	}

	visited := s.visitedPool.Get().(*bitset)
	defer s.visitedPool.Put(visited)

	topicOf := s.topicsMap()
	frontier := []*pathNode{{vert: src}}
	var found []Path
	seen := map[string]bool{}

	for depth := 0; depth < opt.MaxDepth && len(frontier) > 0; depth++ {
		next := s.expand(frontier, dst, topicOf, visited, opt.Window, false, func(np *pathNode) {
			finish(np, s.g, pred, wantPred, seen, &found)
		})
		// Unbounded BFS fan-out explodes on dense graphs; cap like GraphX
		// jobs cap their frontier, but without topic guidance (by vertex
		// order, which is insertion order — a neutral choice).
		sort.SliceStable(next, func(i, j int) bool { return lessVerts(next[i].verts, next[j].verts) })
		if len(next) > opt.Beam*4 {
			next = next[:opt.Beam*4]
		}
		frontier = frontier[:0]
		for _, sc := range next {
			frontier = append(frontier, sc.n)
		}
		if len(found) >= opt.K {
			break
		}
	}
	sort.SliceStable(found, func(i, j int) bool {
		if len(found[i].Edges) != len(found[j].Edges) {
			return len(found[i].Edges) < len(found[j].Edges)
		}
		return lessVerts(found[i].Vertices, found[j].Vertices)
	})
	if len(found) > opt.K {
		found = found[:opt.K]
	}
	return found
}

func pathKey(p Path) string {
	key := make([]byte, 0, len(p.Edges)*8)
	for _, e := range p.Edges {
		id := e.ID
		for i := 0; i < 8; i++ {
			key = append(key, byte(id>>(8*i)))
		}
	}
	return string(key)
}

func lessVerts(a, b []graph.VertexID) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}
