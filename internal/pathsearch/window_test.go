package pathsearch

import (
	"math"
	"reflect"
	"testing"

	"nous/internal/graph"
	"nous/internal/temporal"
)

// windowedGraph plants two src→dst routes: one through curated edges (no
// meaningful timestamp) and one through extracted edges dated ts=100.
func windowedGraph(t *testing.T) (*graph.Graph, graph.VertexID, graph.VertexID) {
	t.Helper()
	g := graph.New()
	src := g.AddVertex("Company")
	dst := g.AddVertex("Company")
	mid1 := g.AddVertex("Company")
	mid2 := g.AddVertex("Company")
	curated := map[string]string{"curated": "true"}
	mustEdge := func(a, b graph.VertexID, label string, ts int64, props map[string]string) {
		t.Helper()
		if _, err := g.AddEdgeFull(a, b, label, 1, ts, props); err != nil {
			t.Fatal(err)
		}
	}
	mustEdge(src, mid1, "partnersWith", -62135596800, curated)
	mustEdge(mid1, dst, "suppliesTo", -62135596800, curated)
	mustEdge(src, mid2, "acquired", 100, nil)
	mustEdge(mid2, dst, "acquired", 100, nil)
	return g, src, dst
}

func TestTopKFullRangeWindowByteIdentical(t *testing.T) {
	g, src, dst := windowedGraph(t)
	s := New(g, nil)
	plain := s.TopK(src, dst, Options{K: 10, MaxDepth: 3})
	all := s.TopK(src, dst, Options{K: 10, MaxDepth: 3, Window: temporal.All()})
	wide := s.TopK(src, dst, Options{K: 10, MaxDepth: 3,
		Window: temporal.Window{Since: math.MinInt64 + 1, Until: math.MaxInt64 - 1}})
	if !reflect.DeepEqual(plain, all) {
		t.Fatalf("All window diverges:\n%+v\nvs\n%+v", plain, all)
	}
	if !reflect.DeepEqual(plain, wide) {
		t.Fatalf("wide bounded window diverges:\n%+v\nvs\n%+v", plain, wide)
	}
	if bp := s.BFSPaths(src, dst, Options{K: 10, MaxDepth: 3}); !reflect.DeepEqual(bp,
		s.BFSPaths(src, dst, Options{K: 10, MaxDepth: 3, Window: temporal.All()})) {
		t.Fatal("BFS full-range window diverges")
	}
}

func TestTopKWindowFiltersExtractedEdges(t *testing.T) {
	g, src, dst := windowedGraph(t)
	s := New(g, nil)
	// A window excluding ts=100 sees only the curated route.
	w := temporal.Window{Since: 200, Until: 300}
	paths := s.TopK(src, dst, Options{K: 10, MaxDepth: 3, Window: w})
	if len(paths) != 1 {
		t.Fatalf("paths in empty extracted window = %d, want 1 (curated)", len(paths))
	}
	for _, e := range paths[0].Edges {
		if e.Props["curated"] != "true" {
			t.Fatalf("extracted edge leaked into window: %+v", e)
		}
	}
	// A window containing ts=100 sees both routes.
	w = temporal.Window{Since: 50, Until: 150}
	if paths := s.TopK(src, dst, Options{K: 10, MaxDepth: 3, Window: w}); len(paths) != 2 {
		t.Fatalf("paths in covering window = %d, want 2", len(paths))
	}
}
