// Package ner implements named-entity recognition over tagged sentences:
// gazetteer lookup (longest match) backed by orthographic and contextual
// heuristics for out-of-gazetteer names. It reproduces the role of the
// Stanford-style NER stage in NOUS's triple-extraction pipeline (§3.2).
package ner

import (
	"sort"
	"strings"

	"nous/internal/nlp"
	"nous/internal/ontology"
)

// Mention is a recognised entity mention: a token span with a surface form
// and a best-guess type (TypeAny when unknown).
type Mention struct {
	Surface    string
	Type       ontology.EntityType
	Start, End int // token span [Start, End)
	InGazette  bool
}

// Recognizer finds entity mentions. Populate the gazetteer from the curated
// KB, then Recognize tagged sentences.
type Recognizer struct {
	gazetteer map[string]ontology.EntityType
	maxLen    int // longest gazetteer surface, in tokens
}

// NewRecognizer returns an empty recognizer.
func NewRecognizer() *Recognizer {
	return &Recognizer{gazetteer: make(map[string]ontology.EntityType), maxLen: 1}
}

// AddGazetteer registers a surface form with its type. Later registrations
// of the same surface with a more specific type win; conflicting specific
// types degrade to their common ancestor.
func (r *Recognizer) AddGazetteer(surface string, typ ontology.EntityType) {
	key := strings.ToLower(strings.TrimSpace(surface))
	if key == "" {
		return
	}
	if prev, ok := r.gazetteer[key]; ok && prev != typ {
		// Ambiguous surface across types: record as Any and let the
		// disambiguator decide.
		r.gazetteer[key] = ontology.TypeAny
	} else {
		r.gazetteer[key] = typ
	}
	if n := len(strings.Fields(key)); n > r.maxLen {
		r.maxLen = n
	}
}

// orgSuffixes mark a trailing token as corporate.
var orgSuffixes = map[string]ontology.EntityType{
	"inc.": ontology.TypeCompany, "inc": ontology.TypeCompany,
	"corp.": ontology.TypeCompany, "corp": ontology.TypeCompany,
	"co.": ontology.TypeCompany, "ltd.": ontology.TypeCompany,
	"llc": ontology.TypeCompany, "sa": ontology.TypeCompany,
	"systems": ontology.TypeCompany, "robotics": ontology.TypeCompany,
	"technologies": ontology.TypeCompany, "technology": ontology.TypeCompany,
	"industries": ontology.TypeCompany, "labs": ontology.TypeCompany,
	"dynamics": ontology.TypeCompany, "aviation": ontology.TypeCompany,
	"aerial": ontology.TypeCompany, "analytics": ontology.TypeCompany,
	"ventures": ontology.TypeCompany, "group": ontology.TypeCompany,
	"aerospace": ontology.TypeCompany, "media": ontology.TypeCompany,
	"pharma": ontology.TypeCompany, "financial": ontology.TypeCompany,
	"university":     ontology.TypeUniversity,
	"administration": ontology.TypeAgency, "agency": ontology.TypeAgency,
	"commission": ontology.TypeAgency,
}

// personTitles preceding a name mark it as a person.
var personTitles = map[string]bool{
	"mr.": true, "mrs.": true, "ms.": true, "dr.": true, "prof.": true,
	"ceo": true, "president": true, "chairman": true, "director": true,
	"founder": true, "executive": true,
}

// firstNameHints is a small first-name gazetteer for person typing.
var firstNameHints = map[string]bool{
	"james": true, "mary": true, "wei": true, "sofia": true, "raj": true,
	"elena": true, "frank": true, "grace": true, "omar": true, "lucia": true,
	"chen": true, "anna": true, "david": true, "mei": true, "paul": true,
	"sara": true, "igor": true, "nina": true, "hugo": true, "ava": true,
	"ken": true, "lily": true, "marco": true, "ruth": true, "tariq": true,
	"jane": true, "john": true, "michael": true, "sarah": true, "robert": true,
}

// Recognize returns the entity mentions of a tagged sentence, sorted by
// start position. Gazetteer matches (longest first) take priority; remaining
// proper-noun runs become heuristically-typed mentions.
func (r *Recognizer) Recognize(s nlp.Sentence) []Mention {
	toks := s.Tokens
	n := len(toks)
	covered := make([]bool, n)
	var out []Mention

	// 1. Gazetteer longest-match scan.
	for i := 0; i < n; i++ {
		if covered[i] {
			continue
		}
		maxSpan := r.maxLen
		if i+maxSpan > n {
			maxSpan = n - i
		}
		for l := maxSpan; l >= 1; l-- {
			if anyCovered(covered, i, i+l) {
				continue
			}
			surface := joinTokens(toks, i, i+l)
			key := strings.ToLower(surface)
			typ, ok := r.gazetteer[key]
			if !ok {
				continue
			}
			// Reject 1-token lowercase function words even if gazetted.
			if l == 1 && !isCapitalized(toks[i].Text) && !nlp.IsNounTag(toks[i].Tag) {
				continue
			}
			out = append(out, Mention{Surface: surface, Type: typ, Start: i, End: i + l, InGazette: true})
			markCovered(covered, i, i+l)
			break
		}
	}

	// 2. Proper-noun runs (NNP+ with optional trailing CD: "Falcon 2").
	for i := 0; i < n; i++ {
		if covered[i] || toks[i].Tag != "NNP" {
			continue
		}
		j := i
		for j < n && !covered[j] && toks[j].Tag == "NNP" {
			j++
		}
		end := j
		if end < n && !covered[end] && toks[end].Tag == "CD" && !strings.Contains(toks[end].Text, "$") {
			end++
		}
		start := i
		titled := false
		// "Mr. Navarro": the honorific marks the type but stays out of the
		// mention surface.
		if personTitles[strings.ToLower(toks[start].Text)] && end > start+1 {
			start++
			titled = true
		}
		surface := joinTokens(toks, start, end)
		typ := r.guessType(toks, start, end)
		if titled {
			typ = ontology.TypePerson
		}
		out = append(out, Mention{Surface: surface, Type: typ, Start: start, End: end})
		markCovered(covered, i, end)
		i = end - 1
	}

	sort.Slice(out, func(a, b int) bool { return out[a].Start < out[b].Start })
	return out
}

// guessType applies orthographic and contextual heuristics to an
// out-of-gazetteer proper-noun span.
func (r *Recognizer) guessType(toks []nlp.Token, start, end int) ontology.EntityType {
	last := strings.ToLower(toks[end-1].Text)
	if t, ok := orgSuffixes[last]; ok {
		return t
	}
	if start > 0 && personTitles[strings.ToLower(toks[start-1].Text)] {
		return ontology.TypePerson
	}
	if end-start == 2 && firstNameHints[strings.ToLower(toks[start].Text)] {
		return ontology.TypePerson
	}
	// location cue: preceded by a locative preposition
	if start > 0 && toks[start-1].Tag == "IN" {
		switch strings.ToLower(toks[start-1].Text) {
		case "in", "at", "near":
			return ontology.TypeLocation
		}
	}
	return ontology.TypeAny
}

// MentionAt returns the mention covering token index i, if any.
func MentionAt(mentions []Mention, i int) (Mention, bool) {
	for _, m := range mentions {
		if m.Start <= i && i < m.End {
			return m, true
		}
	}
	return Mention{}, false
}

// MentionWithin returns the longest mention fully inside [start, end).
func MentionWithin(mentions []Mention, start, end int) (Mention, bool) {
	best := Mention{Start: -1}
	found := false
	for _, m := range mentions {
		if m.Start >= start && m.End <= end {
			if !found || m.End-m.Start > best.End-best.Start {
				best = m
				found = true
			}
		}
	}
	return best, found
}

func anyCovered(covered []bool, a, b int) bool {
	for i := a; i < b; i++ {
		if covered[i] {
			return true
		}
	}
	return false
}

func markCovered(covered []bool, a, b int) {
	for i := a; i < b; i++ {
		covered[i] = true
	}
}

func joinTokens(toks []nlp.Token, a, b int) string {
	parts := make([]string, 0, b-a)
	for i := a; i < b; i++ {
		parts = append(parts, toks[i].Text)
	}
	return strings.Join(parts, " ")
}

func isCapitalized(w string) bool {
	return len(w) > 0 && w[0] >= 'A' && w[0] <= 'Z'
}
