package ner

import (
	"testing"

	"nous/internal/nlp"
	"nous/internal/ontology"
)

func rec() *Recognizer {
	r := NewRecognizer()
	r.AddGazetteer("DJI", ontology.TypeCompany)
	r.AddGazetteer("Parrot", ontology.TypeCompany)
	r.AddGazetteer("Shenzhen", ontology.TypeCity)
	r.AddGazetteer("Phantom 3", ontology.TypeProduct)
	r.AddGazetteer("FAA", ontology.TypeAgency)
	r.AddGazetteer("Federal Aviation Administration", ontology.TypeAgency)
	return r
}

func recognize(r *Recognizer, text string) []Mention {
	ss := nlp.Process(text)
	if len(ss) == 0 {
		return nil
	}
	return r.Recognize(ss[0])
}

func TestGazetteerMatch(t *testing.T) {
	ms := recognize(rec(), "DJI announced a new drone in Shenzhen.")
	if len(ms) != 2 {
		t.Fatalf("mentions = %+v, want 2", ms)
	}
	if ms[0].Surface != "DJI" || ms[0].Type != ontology.TypeCompany || !ms[0].InGazette {
		t.Errorf("first mention = %+v", ms[0])
	}
	if ms[1].Surface != "Shenzhen" || ms[1].Type != ontology.TypeCity {
		t.Errorf("second mention = %+v", ms[1])
	}
}

func TestLongestMatchWins(t *testing.T) {
	ms := recognize(rec(), "The Federal Aviation Administration approved the rules.")
	found := false
	for _, m := range ms {
		if m.Surface == "Federal Aviation Administration" {
			found = true
		}
		if m.Surface == "Federal" || m.Surface == "Administration" {
			t.Errorf("partial match leaked: %+v", m)
		}
	}
	if !found {
		t.Fatalf("multiword gazetteer match missed: %+v", ms)
	}
}

func TestProductWithNumber(t *testing.T) {
	ms := recognize(rec(), "DJI unveiled the Phantom 3 at a trade show.")
	found := false
	for _, m := range ms {
		if m.Surface == "Phantom 3" && m.Type == ontology.TypeProduct {
			found = true
		}
	}
	if !found {
		t.Fatalf("Phantom 3 not matched: %+v", ms)
	}
}

func TestOrgSuffixHeuristic(t *testing.T) {
	ms := recognize(rec(), "Quadtech Robotics announced a partnership.")
	if len(ms) == 0 {
		t.Fatal("no mentions")
	}
	if ms[0].Surface != "Quadtech Robotics" || ms[0].Type != ontology.TypeCompany {
		t.Errorf("mention = %+v, want Quadtech Robotics/Company", ms[0])
	}
	if ms[0].InGazette {
		t.Error("heuristic mention marked as gazetteer")
	}
}

func TestPersonTitleHeuristic(t *testing.T) {
	ms := recognize(rec(), "Mr. Navarro joined the firm.")
	found := false
	for _, m := range ms {
		if m.Surface == "Navarro" && m.Type == ontology.TypePerson {
			found = true
		}
	}
	if !found {
		t.Fatalf("title heuristic failed: %+v", ms)
	}
}

func TestFirstNameHeuristic(t *testing.T) {
	ms := recognize(rec(), "Elena Vasquez joined the board.")
	found := false
	for _, m := range ms {
		if m.Surface == "Elena Vasquez" && m.Type == ontology.TypePerson {
			found = true
		}
	}
	if !found {
		t.Fatalf("first-name heuristic failed: %+v", ms)
	}
}

func TestLocationPrepositionHeuristic(t *testing.T) {
	ms := recognize(rec(), "The firm opened an office in Montevideo.")
	found := false
	for _, m := range ms {
		if m.Surface == "Montevideo" && m.Type == ontology.TypeLocation {
			found = true
		}
	}
	if !found {
		t.Fatalf("location heuristic failed: %+v", ms)
	}
}

func TestAmbiguousGazetteerDegradesToAny(t *testing.T) {
	r := NewRecognizer()
	r.AddGazetteer("Apex", ontology.TypeCompany)
	r.AddGazetteer("Apex", ontology.TypeProduct)
	ms := recognize(r, "Apex announced results.")
	if len(ms) == 0 || ms[0].Type != ontology.TypeAny {
		t.Fatalf("ambiguous surface should be TypeAny: %+v", ms)
	}
}

func TestMentionWithin(t *testing.T) {
	ms := []Mention{{Surface: "A", Start: 1, End: 2}, {Surface: "B C", Start: 3, End: 5}}
	if m, ok := MentionWithin(ms, 3, 6); !ok || m.Surface != "B C" {
		t.Errorf("MentionWithin = %+v, %v", m, ok)
	}
	if _, ok := MentionWithin(ms, 4, 6); ok {
		t.Error("partial overlap should not match")
	}
	if m, ok := MentionAt(ms, 1); !ok || m.Surface != "A" {
		t.Errorf("MentionAt = %+v, %v", m, ok)
	}
}

func TestNoMentionsInPlainSentence(t *testing.T) {
	ms := recognize(rec(), "the deal is subject to regulatory approval.")
	if len(ms) != 0 {
		t.Fatalf("unexpected mentions: %+v", ms)
	}
}
