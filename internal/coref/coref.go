// Package coref implements the lightweight co-reference resolution NOUS's
// extraction pipeline relies on (§3.2): pronouns ("it", "they", "he"),
// definite nominals ("the company", "the agency") and partial-name mentions
// ("Smith" after "Jane Smith") are resolved to the most recent compatible
// antecedent in document order.
package coref

import (
	"strings"

	"nous/internal/ner"
	"nous/internal/ontology"
)

// Tracker accumulates mentions in reading order and answers resolution
// queries. One Tracker serves one document. Grammatical subjects are more
// salient antecedents than other mentions, matching the strong subject
// preference of pronouns in news text.
type Tracker struct {
	ont      *ontology.Ontology
	history  []ner.Mention // most recent last
	subjects []ner.Mention // most recent last
	limit    int
}

// NewTracker returns a tracker for a document. A nil ontology gets the
// default taxonomy.
func NewTracker(ont *ontology.Ontology) *Tracker {
	if ont == nil {
		ont = ontology.Default()
	}
	return &Tracker{ont: ont, limit: 40}
}

// Observe records a mention as a potential antecedent.
func (t *Tracker) Observe(m ner.Mention) {
	if strings.TrimSpace(m.Surface) == "" {
		return
	}
	t.history = append(t.history, m)
	if len(t.history) > t.limit {
		t.history = t.history[len(t.history)-t.limit:]
	}
}

// ObserveSubject records a mention that served as a grammatical subject;
// subjects outrank regular mentions during resolution.
func (t *Tracker) ObserveSubject(m ner.Mention) {
	if strings.TrimSpace(m.Surface) == "" {
		return
	}
	t.subjects = append(t.subjects, m)
	if len(t.subjects) > t.limit {
		t.subjects = t.subjects[len(t.subjects)-t.limit:]
	}
	t.Observe(m)
}

// nominalHeads maps the head noun of a definite nominal ("the company") to
// the entity type the antecedent must be compatible with.
var nominalHeads = map[string]ontology.EntityType{
	"company": ontology.TypeCompany, "firm": ontology.TypeCompany,
	"startup": ontology.TypeCompany, "maker": ontology.TypeCompany,
	"manufacturer": ontology.TypeCompany, "giant": ontology.TypeCompany,
	"agency": ontology.TypeAgency, "regulator": ontology.TypeAgency,
	"organization": ontology.TypeOrganization,
	"drone":        ontology.TypeProduct, "device": ontology.TypeProduct,
	"product": ontology.TypeProduct, "aircraft": ontology.TypeProduct,
	"executive": ontology.TypePerson, "man": ontology.TypePerson,
	"woman": ontology.TypePerson, "analyst": ontology.TypePerson,
}

// ResolvePronoun resolves "it"/"they"/"he"/"she" (any case) to the most
// recent compatible antecedent.
func (t *Tracker) ResolvePronoun(pronoun string) (ner.Mention, bool) {
	switch strings.ToLower(pronoun) {
	case "it", "its", "itself":
		return t.mostRecentWhere(func(m ner.Mention) bool {
			return !t.isType(m, ontology.TypePerson)
		})
	case "they", "them", "their":
		// Organizations are routinely pluralised in news text.
		return t.mostRecentWhere(func(m ner.Mention) bool {
			return !t.isType(m, ontology.TypePerson)
		})
	case "he", "she", "him", "her", "his":
		return t.mostRecentWhere(func(m ner.Mention) bool {
			return t.isType(m, ontology.TypePerson)
		})
	}
	return ner.Mention{}, false
}

// ResolveNominal resolves a definite nominal by its head noun ("company",
// "agency", "drone", …) to the most recent antecedent of a compatible type.
func (t *Tracker) ResolveNominal(head string) (ner.Mention, bool) {
	want, ok := nominalHeads[strings.ToLower(head)]
	if !ok {
		return ner.Mention{}, false
	}
	if m, ok := t.mostRecentWhere(func(m ner.Mention) bool { return t.isType(m, want) }); ok {
		return m, true
	}
	// Untyped antecedents are acceptable for corporate nominals: extracted
	// news text is organisation-heavy.
	if want == ontology.TypeCompany || want == ontology.TypeOrganization {
		return t.mostRecentWhere(func(m ner.Mention) bool { return m.Type == ontology.TypeAny })
	}
	return ner.Mention{}, false
}

// ResolvePartial resolves a short mention ("Smith", "Apex") to the most
// recent antecedent whose surface contains it as a leading or trailing word.
func (t *Tracker) ResolvePartial(surface string) (ner.Mention, bool) {
	s := strings.ToLower(strings.TrimSpace(surface))
	if s == "" {
		return ner.Mention{}, false
	}
	return t.mostRecentWhere(func(m ner.Mention) bool {
		full := strings.ToLower(m.Surface)
		if full == s {
			return false // same surface is not a partial match
		}
		return strings.HasPrefix(full, s+" ") || strings.HasSuffix(full, " "+s)
	})
}

// IsPronoun reports whether the word is a pronoun the tracker can resolve.
func IsPronoun(word string) bool {
	switch strings.ToLower(word) {
	case "it", "its", "itself", "they", "them", "their", "he", "she", "him", "her", "his":
		return true
	}
	return false
}

// IsNominalHead reports whether head is a resolvable definite-nominal head.
func IsNominalHead(head string) bool {
	_, ok := nominalHeads[strings.ToLower(head)]
	return ok
}

func (t *Tracker) mostRecentWhere(pred func(ner.Mention) bool) (ner.Mention, bool) {
	for i := len(t.subjects) - 1; i >= 0; i-- {
		if pred(t.subjects[i]) {
			return t.subjects[i], true
		}
	}
	for i := len(t.history) - 1; i >= 0; i-- {
		if pred(t.history[i]) {
			return t.history[i], true
		}
	}
	return ner.Mention{}, false
}

func (t *Tracker) isType(m ner.Mention, want ontology.EntityType) bool {
	if m.Type == ontology.TypeAny {
		return false
	}
	return t.ont.IsSubtype(m.Type, want)
}
