package coref

import (
	"testing"

	"nous/internal/ner"
	"nous/internal/ontology"
)

func m(surface string, typ ontology.EntityType) ner.Mention {
	return ner.Mention{Surface: surface, Type: typ}
}

func TestPronounItResolvesToOrg(t *testing.T) {
	tr := NewTracker(nil)
	tr.Observe(m("DJI", ontology.TypeCompany))
	got, ok := tr.ResolvePronoun("it")
	if !ok || got.Surface != "DJI" {
		t.Fatalf("it → %+v, %v", got, ok)
	}
}

func TestPronounHeResolvesToPerson(t *testing.T) {
	tr := NewTracker(nil)
	tr.Observe(m("DJI", ontology.TypeCompany))
	tr.Observe(m("Frank Wang", ontology.TypePerson))
	got, ok := tr.ResolvePronoun("he")
	if !ok || got.Surface != "Frank Wang" {
		t.Fatalf("he → %+v, %v", got, ok)
	}
	// "it" must skip the person even though it is more recent.
	got, ok = tr.ResolvePronoun("it")
	if !ok || got.Surface != "DJI" {
		t.Fatalf("it → %+v, %v", got, ok)
	}
}

func TestSubjectSalienceBeatsRecency(t *testing.T) {
	tr := NewTracker(nil)
	tr.ObserveSubject(m("DJI", ontology.TypeCompany))
	tr.Observe(m("Aeros Labs", ontology.TypeCompany)) // more recent object
	got, ok := tr.ResolvePronoun("it")
	if !ok || got.Surface != "DJI" {
		t.Fatalf("subject preference violated: it → %+v, %v", got, ok)
	}
}

func TestNominalCompany(t *testing.T) {
	tr := NewTracker(nil)
	tr.Observe(m("Shenzhen", ontology.TypeCity))
	tr.Observe(m("Parrot", ontology.TypeCompany))
	got, ok := tr.ResolveNominal("company")
	if !ok || got.Surface != "Parrot" {
		t.Fatalf("the company → %+v, %v", got, ok)
	}
	got, ok = tr.ResolveNominal("agency")
	if ok {
		t.Fatalf("agency resolved to %+v with no agency observed", got)
	}
}

func TestNominalFallsBackToUntyped(t *testing.T) {
	tr := NewTracker(nil)
	tr.Observe(m("Quadlift Holdings", ontology.TypeAny))
	got, ok := tr.ResolveNominal("company")
	if !ok || got.Surface != "Quadlift Holdings" {
		t.Fatalf("untyped fallback failed: %+v, %v", got, ok)
	}
}

func TestPartialNameResolution(t *testing.T) {
	tr := NewTracker(nil)
	tr.Observe(m("Jane Smith", ontology.TypePerson))
	tr.Observe(m("Apex Robotics", ontology.TypeCompany))
	if got, ok := tr.ResolvePartial("Smith"); !ok || got.Surface != "Jane Smith" {
		t.Fatalf("Smith → %+v, %v", got, ok)
	}
	if got, ok := tr.ResolvePartial("Apex"); !ok || got.Surface != "Apex Robotics" {
		t.Fatalf("Apex → %+v, %v", got, ok)
	}
	if _, ok := tr.ResolvePartial("Apex Robotics"); ok {
		t.Fatal("identical surface must not partial-match itself")
	}
	if _, ok := tr.ResolvePartial("Robo"); ok {
		t.Fatal("substring (non-word) must not match")
	}
}

func TestUnresolvablePronoun(t *testing.T) {
	tr := NewTracker(nil)
	if _, ok := tr.ResolvePronoun("it"); ok {
		t.Fatal("empty tracker resolved a pronoun")
	}
	if _, ok := tr.ResolvePronoun("banana"); ok {
		t.Fatal("non-pronoun resolved")
	}
}

func TestIsPronounAndNominalHead(t *testing.T) {
	for _, w := range []string{"it", "He", "THEY", "her"} {
		if !IsPronoun(w) {
			t.Errorf("IsPronoun(%q) = false", w)
		}
	}
	if IsPronoun("company") {
		t.Error("company is not a pronoun")
	}
	if !IsNominalHead("company") || !IsNominalHead("agency") {
		t.Error("nominal heads missing")
	}
	if IsNominalHead("drone-strike") {
		t.Error("unknown head accepted")
	}
}

func TestHistoryBounded(t *testing.T) {
	tr := NewTracker(nil)
	for i := 0; i < 200; i++ {
		tr.Observe(m("Entity", ontology.TypeCompany))
	}
	if len(tr.history) > tr.limit {
		t.Fatalf("history grew to %d, limit %d", len(tr.history), tr.limit)
	}
}
