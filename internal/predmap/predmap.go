// Package predmap maps raw OpenIE relation phrases onto the target
// ontology's predicates (§3.3). Following the Extreme Extraction recipe of
// Freedman et al. that the paper adopts, every predicate model is
// bootstrapped with 5–10 seed phrases and then expanded semi-supervised:
// raw triples whose argument pair is already related in the knowledge base
// provide distant-supervision labels for new phrases, which are admitted
// when their estimated precision clears a threshold. Rules may be inverted
// ("X hired P" → worksFor(P, X)) and are filtered by the ontology's
// domain/range constraints.
package predmap

import (
	"sort"
	"strings"

	"nous/internal/core"
	"nous/internal/extract"
	"nous/internal/ontology"
)

// Rule maps a normalized relation phrase to a predicate.
type Rule struct {
	Phrase    string
	Predicate string
	// Invert swaps subject and object when applying the rule.
	Invert bool
	// Weight estimates the rule's precision in (0,1]; seeds carry 0.95.
	Weight float64
	// Seed marks hand-written bootstrap rules.
	Seed bool
}

// FactLookup answers which predicates already relate an entity pair; the
// dynamic KG implements it.
type FactLookup interface {
	PredicatesBetween(subject, object string) []string
}

// Config tunes semi-supervised expansion.
type Config struct {
	// MinSupport is the minimum number of distant-supervision matches a
	// phrase needs before a rule is learned.
	MinSupport int
	// MinPrecision is the minimum fraction of a phrase's labelled
	// occurrences that agree with the majority predicate.
	MinPrecision float64
	// SeedWeight is the confidence of seed rules.
	SeedWeight float64
}

// DefaultConfig matches the paper's bootstrap regime.
func DefaultConfig() Config {
	return Config{MinSupport: 3, MinPrecision: 0.6, SeedWeight: 0.95}
}

// Mapper maps raw triples into ontology triples.
type Mapper struct {
	ont   *ontology.Ontology
	cfg   Config
	rules map[string][]Rule // normalized phrase -> rules

	// phraseEvidence accumulates distant-supervision counts:
	// phrase -> predicate(+"!inv" suffix for inverted evidence) -> count.
	phraseEvidence map[string]map[string]int
}

// NewMapper returns a mapper with no rules. Call AddDefaultSeeds (or
// AddSeed) before mapping.
func NewMapper(ont *ontology.Ontology, cfg Config) *Mapper {
	if ont == nil {
		ont = ontology.Default()
	}
	if cfg.MinSupport <= 0 {
		cfg = DefaultConfig()
	}
	return &Mapper{
		ont:            ont,
		cfg:            cfg,
		rules:          make(map[string][]Rule),
		phraseEvidence: make(map[string]map[string]int),
	}
}

// AddSeed installs a hand-written bootstrap rule.
func (m *Mapper) AddSeed(phrase, predicate string, invert bool) {
	m.addRule(Rule{Phrase: normalize(phrase), Predicate: predicate, Invert: invert,
		Weight: m.cfg.SeedWeight, Seed: true})
}

func (m *Mapper) addRule(r Rule) {
	for i, old := range m.rules[r.Phrase] {
		if old.Predicate == r.Predicate && old.Invert == r.Invert {
			if r.Weight > old.Weight {
				m.rules[r.Phrase][i].Weight = r.Weight
			}
			return
		}
	}
	m.rules[r.Phrase] = append(m.rules[r.Phrase], r)
}

// AddDefaultSeeds installs the bootstrap lexicon for the default ontology:
// 5–10 phrases per predicate, mirroring the paper's setup.
func (m *Mapper) AddDefaultSeeds() {
	seeds := []struct {
		pred   string
		invert bool
		phrase []string
	}{
		{"acquired", false, []string{"acquire", "buy", "purchase", "take over", "merge with", "complete purchase of", "agree to buy"}},
		{"partnersWith", false, []string{"partner with", "team up with", "announce partnership with", "collaborate with", "sign agreement with"}},
		{"manufactures", false, []string{"manufacture", "make", "unveil", "launch", "introduce", "produce", "release"}},
		{"deploys", false, []string{"deploy", "use", "employ", "use for", "operate"}},
		{"invests", false, []string{"invest in", "back", "lead funding round in", "fund"}},
		{"develops", false, []string{"develop", "demonstrate", "showcase", "work on", "build"}},
		{"approves", false, []string{"approve", "grant license for", "clear", "authorize", "certify"}},
		{"bans", false, []string{"ban", "ground", "prohibit", "bar"}},
		{"worksFor", false, []string{"join", "work for", "serve at"}},
		{"worksFor", true, []string{"hire", "appoint", "promote", "name"}},
		{"headquarteredIn", false, []string{"base in", "headquarter in", "locate in"}},
		{"ceoOf", false, []string{"be chief executive of", "run", "lead", "head"}},
		{"foundedBy", true, []string{"found", "establish", "start"}},
		{"competesWith", false, []string{"compete with", "rival"}},
		{"suppliesTo", false, []string{"supply", "provide to", "sell to"}},
		{"cites", false, []string{"cite", "reference", "build on"}},
		{"authorOf", false, []string{"author", "write", "publish"}},
		{"publishedAt", false, []string{"appear at", "publish at"}},
		{"accessed", false, []string{"access", "open", "read"}},
		{"loggedInto", false, []string{"log into", "log in to"}},
		{"emailed", false, []string{"email", "send message to"}},
		{"copiedTo", false, []string{"copy to", "transfer to"}},
	}
	for _, s := range seeds {
		for _, p := range s.phrase {
			m.AddSeed(p, s.pred, s.invert)
		}
	}
}

// Rules returns the current rules for a phrase (nil if none).
func (m *Mapper) Rules(phrase string) []Rule {
	return m.rules[normalize(phrase)]
}

// NumRules returns the total rule count.
func (m *Mapper) NumRules() int {
	n := 0
	for _, rs := range m.rules {
		n += len(rs)
	}
	return n
}

// Map converts a raw extraction into an ontology triple. It returns false
// when no rule matches, the raw triple is negated, or every matching rule
// violates the predicate's type constraints.
func (m *Mapper) Map(rt extract.RawTriple) (core.Triple, bool) {
	if rt.Negated {
		return core.Triple{}, false
	}
	rules := m.rules[normalize(rt.RelNorm)]
	if len(rules) == 0 {
		return core.Triple{}, false
	}
	best := Rule{}
	found := false
	for _, r := range rules {
		subjT, objT := rt.Arg1Type, rt.Arg2Type
		if r.Invert {
			subjT, objT = objT, subjT
		}
		if !m.typeOK(r.Predicate, subjT, objT) {
			continue
		}
		if !found || r.Weight > best.Weight {
			best = r
			found = true
		}
	}
	if !found {
		return core.Triple{}, false
	}
	subj, obj := rt.Arg1, rt.Arg2
	subjT, objT := rt.Arg1Type, rt.Arg2Type
	if best.Invert {
		subj, obj = obj, subj
		subjT, objT = objT, subjT
	}
	t := core.Triple{
		Subject:    subj,
		Predicate:  best.Predicate,
		Object:     obj,
		Confidence: rt.Confidence * best.Weight,
		Provenance: core.Provenance{
			Source:   rt.Source,
			DocID:    rt.DocID,
			Sentence: rt.Sentence,
			Time:     rt.Date,
		},
	}
	if subjT != ontology.TypeAny {
		t.SubjectType = subjT
	}
	if objT != ontology.TypeAny {
		t.ObjectType = objT
	}
	return t, true
}

// typeOK checks domain/range compatibility treating TypeAny as unknown
// (acceptable: the KG assigns the predicate's declared types on insert).
func (m *Mapper) typeOK(pred string, subj, obj ontology.EntityType) bool {
	p, ok := m.ont.Predicate(pred)
	if !ok {
		return false
	}
	if subj != ontology.TypeAny && !m.ont.IsSubtype(subj, p.Domain) {
		return false
	}
	if obj != ontology.TypeAny && !m.ont.IsSubtype(obj, p.Range) {
		return false
	}
	return true
}

// Learn runs one round of semi-supervised expansion over a batch of raw
// triples: phrases whose argument pairs are already related in the KB
// accumulate evidence, and phrases clearing the support and precision
// thresholds become rules. It returns the number of new rules learned.
func (m *Mapper) Learn(raws []extract.RawTriple, kb FactLookup) int {
	for _, rt := range raws {
		if rt.Negated {
			continue
		}
		phrase := normalize(rt.RelNorm)
		if phrase == "" {
			continue
		}
		for _, pred := range kb.PredicatesBetween(rt.Arg1, rt.Arg2) {
			m.bumpEvidence(phrase, pred)
		}
		for _, pred := range kb.PredicatesBetween(rt.Arg2, rt.Arg1) {
			m.bumpEvidence(phrase, pred+"!inv")
		}
	}

	learned := 0
	for phrase, byPred := range m.phraseEvidence {
		total := 0
		bestPred, bestCount := "", 0
		for pred, c := range byPred {
			total += c
			if c > bestCount || (c == bestCount && pred < bestPred) {
				bestPred, bestCount = pred, c
			}
		}
		if bestCount < m.cfg.MinSupport {
			continue
		}
		precision := float64(bestCount) / float64(total)
		if precision < m.cfg.MinPrecision {
			continue
		}
		invert := strings.HasSuffix(bestPred, "!inv")
		pred := strings.TrimSuffix(bestPred, "!inv")
		if m.hasRule(phrase, pred, invert) {
			continue
		}
		m.addRule(Rule{Phrase: phrase, Predicate: pred, Invert: invert, Weight: precision})
		learned++
	}
	return learned
}

func (m *Mapper) bumpEvidence(phrase, key string) {
	byPred, ok := m.phraseEvidence[phrase]
	if !ok {
		byPred = make(map[string]int)
		m.phraseEvidence[phrase] = byPred
	}
	byPred[key]++
}

func (m *Mapper) hasRule(phrase, pred string, invert bool) bool {
	for _, r := range m.rules[phrase] {
		if r.Predicate == pred && r.Invert == invert {
			return true
		}
	}
	return false
}

// LearnedRules returns all non-seed rules, sorted by phrase.
func (m *Mapper) LearnedRules() []Rule {
	var out []Rule
	for _, rs := range m.rules {
		for _, r := range rs {
			if !r.Seed {
				out = append(out, r)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Phrase < out[j].Phrase })
	return out
}

func normalize(phrase string) string {
	return strings.Join(strings.Fields(strings.ToLower(phrase)), " ")
}
