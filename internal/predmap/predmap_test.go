package predmap

import (
	"testing"
	"time"

	"nous/internal/core"
	"nous/internal/extract"
	"nous/internal/ontology"
)

func raw(a1, rel, a2 string, t1, t2 ontology.EntityType) extract.RawTriple {
	return extract.RawTriple{
		Arg1: a1, RelNorm: rel, Arg2: a2,
		Arg1Type: t1, Arg2Type: t2,
		Confidence: 0.9, DocID: "d", Source: "s",
		Date: time.Date(2015, 3, 1, 0, 0, 0, 0, time.UTC),
	}
}

func seeded() *Mapper {
	m := NewMapper(nil, DefaultConfig())
	m.AddDefaultSeeds()
	return m
}

func TestSeedMapping(t *testing.T) {
	m := seeded()
	tr, ok := m.Map(raw("DJI", "acquire", "Aeros", ontology.TypeCompany, ontology.TypeCompany))
	if !ok {
		t.Fatal("seed phrase not mapped")
	}
	if tr.Predicate != "acquired" || tr.Subject != "DJI" || tr.Object != "Aeros" {
		t.Fatalf("triple = %+v", tr)
	}
	if tr.Confidence <= 0 || tr.Confidence > 0.9 {
		t.Errorf("confidence = %v, want rt.Confidence * weight", tr.Confidence)
	}
	if tr.Provenance.DocID != "d" || tr.Provenance.Time.IsZero() {
		t.Errorf("provenance lost: %+v", tr.Provenance)
	}
}

func TestInvertedRule(t *testing.T) {
	m := seeded()
	// "GoPro hired Jane Smith" → worksFor(Jane Smith, GoPro)
	tr, ok := m.Map(raw("GoPro", "hire", "Jane Smith", ontology.TypeCompany, ontology.TypePerson))
	if !ok {
		t.Fatal("inverted rule not applied")
	}
	if tr.Predicate != "worksFor" || tr.Subject != "Jane Smith" || tr.Object != "GoPro" {
		t.Fatalf("triple = %+v", tr)
	}
}

func TestFoundedByInversion(t *testing.T) {
	m := seeded()
	// passive-inverted extraction already yields (founder, found, company)
	tr, ok := m.Map(raw("Frank Wang", "found", "DJI", ontology.TypePerson, ontology.TypeCompany))
	if !ok {
		t.Fatal("found rule missing")
	}
	if tr.Predicate != "foundedBy" || tr.Subject != "DJI" || tr.Object != "Frank Wang" {
		t.Fatalf("triple = %+v", tr)
	}
}

func TestTypeIncompatibleRejected(t *testing.T) {
	m := seeded()
	// a Person cannot acquire: domain is Company
	if tr, ok := m.Map(raw("Jane Smith", "acquire", "Aeros", ontology.TypePerson, ontology.TypeCompany)); ok {
		t.Fatalf("type violation accepted: %+v", tr)
	}
}

func TestUnknownTypesAccepted(t *testing.T) {
	m := seeded()
	tr, ok := m.Map(raw("Foo", "acquire", "Bar", ontology.TypeAny, ontology.TypeAny))
	if !ok {
		t.Fatal("unknown-typed args should map (types assigned on insert)")
	}
	if tr.SubjectType != "" || tr.ObjectType != "" {
		t.Errorf("Any types should stay empty for KG defaulting: %+v", tr)
	}
}

func TestNegatedRejected(t *testing.T) {
	m := seeded()
	rt := raw("DJI", "acquire", "Aeros", ontology.TypeCompany, ontology.TypeCompany)
	rt.Negated = true
	if _, ok := m.Map(rt); ok {
		t.Fatal("negated triple mapped")
	}
}

func TestUnmappablePhrase(t *testing.T) {
	m := seeded()
	if _, ok := m.Map(raw("Shares", "rise", "3 percent", ontology.TypeAny, ontology.TypeAny)); ok {
		t.Fatal("noise phrase mapped")
	}
}

func TestPhraseNormalization(t *testing.T) {
	m := NewMapper(nil, DefaultConfig())
	m.AddSeed("  Team   Up With ", "partnersWith", false)
	if rs := m.Rules("team up with"); len(rs) != 1 {
		t.Fatalf("normalization failed: %v", rs)
	}
}

func TestLearnExpandsRules(t *testing.T) {
	kg := core.NewKG(nil)
	// KB knows these acquisitions.
	pairs := [][2]string{{"A Co", "B Co"}, {"C Co", "D Co"}, {"E Co", "F Co"}}
	for _, p := range pairs {
		if _, err := kg.AddFact(core.Triple{Subject: p[0], Predicate: "acquired", Object: p[1],
			Confidence: 1, Curated: true}); err != nil {
			t.Fatal(err)
		}
	}
	m := seeded()
	if m.Rules("gobble up") != nil {
		t.Fatal("phrase already known")
	}
	var raws []extract.RawTriple
	for _, p := range pairs {
		raws = append(raws, raw(p[0], "gobble up", p[1], ontology.TypeCompany, ontology.TypeCompany))
	}
	learned := m.Learn(raws, kg)
	if learned != 1 {
		t.Fatalf("learned = %d rules, want 1", learned)
	}
	tr, ok := m.Map(raw("X Co", "gobble up", "Y Co", ontology.TypeCompany, ontology.TypeCompany))
	if !ok || tr.Predicate != "acquired" {
		t.Fatalf("learned rule not applied: %+v ok=%v", tr, ok)
	}
	lr := m.LearnedRules()
	if len(lr) != 1 || lr[0].Seed {
		t.Fatalf("LearnedRules = %+v", lr)
	}
}

func TestLearnInvertedEvidence(t *testing.T) {
	kg := core.NewKG(nil)
	people := [][2]string{{"P1 Smith", "A Co"}, {"P2 Khan", "B Co"}, {"P3 Lee", "C Co"}}
	for _, p := range people {
		if _, err := kg.AddFact(core.Triple{Subject: p[0], Predicate: "worksFor", Object: p[1],
			SubjectType: ontology.TypePerson, Confidence: 1, Curated: true}); err != nil {
			t.Fatal(err)
		}
	}
	m := seeded()
	var raws []extract.RawTriple
	for _, p := range people {
		// "A Co brought aboard P1 Smith" — company first: inverted evidence
		raws = append(raws, raw(p[1], "bring aboard", p[0], ontology.TypeCompany, ontology.TypePerson))
	}
	if learned := m.Learn(raws, kg); learned != 1 {
		t.Fatalf("learned = %d", learned)
	}
	tr, ok := m.Map(raw("Z Co", "bring aboard", "New Person", ontology.TypeCompany, ontology.TypePerson))
	if !ok || tr.Predicate != "worksFor" || tr.Subject != "New Person" {
		t.Fatalf("inverted learned rule wrong: %+v ok=%v", tr, ok)
	}
}

func TestLearnRespectsThresholds(t *testing.T) {
	kg := core.NewKG(nil)
	kg.AddFact(core.Triple{Subject: "A Co", Predicate: "acquired", Object: "B Co", Confidence: 1, Curated: true})
	m := NewMapper(nil, Config{MinSupport: 3, MinPrecision: 0.6, SeedWeight: 0.95})
	raws := []extract.RawTriple{raw("A Co", "swallow", "B Co", ontology.TypeCompany, ontology.TypeCompany)}
	if learned := m.Learn(raws, kg); learned != 0 {
		t.Fatalf("learned %d rules below support threshold", learned)
	}
}

func TestLearnIdempotent(t *testing.T) {
	kg := core.NewKG(nil)
	for _, p := range [][2]string{{"A Co", "B Co"}, {"C Co", "D Co"}, {"E Co", "F Co"}} {
		kg.AddFact(core.Triple{Subject: p[0], Predicate: "acquired", Object: p[1], Confidence: 1, Curated: true})
	}
	m := seeded()
	var raws []extract.RawTriple
	for _, p := range [][2]string{{"A Co", "B Co"}, {"C Co", "D Co"}, {"E Co", "F Co"}} {
		raws = append(raws, raw(p[0], "gobble up", p[1], ontology.TypeCompany, ontology.TypeCompany))
	}
	if n := m.Learn(raws, kg); n != 1 {
		t.Fatalf("first learn = %d", n)
	}
	if n := m.Learn(nil, kg); n != 0 {
		t.Fatalf("re-learn created %d duplicate rules", n)
	}
}

func TestNumRulesCountsSeeds(t *testing.T) {
	m := seeded()
	if m.NumRules() < 50 {
		t.Fatalf("expected a rich seed set, got %d rules", m.NumRules())
	}
}
