package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// lineReporter flags every statement line, giving the directive tests a
// diagnostic stream to suppress.
var lineReporter = &Analyzer{
	Name: "linereport",
	Doc:  "test analyzer that reports every statement",
	Run: func(pass *Pass) (any, error) {
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				for _, stmt := range fd.Body.List {
					pass.Reportf(stmt.Pos(), "statement")
				}
			}
		}
		return nil, nil
	},
}

func runOn(t *testing.T, src string) ([]Diagnostic, int) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "t.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := NewInfo()
	pkg, err := (&types.Config{}).Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	diags, suppressed, err := Run(lineReporter, fset, []*ast.File{f}, pkg, info)
	if err != nil {
		t.Fatal(err)
	}
	return diags, suppressed
}

func TestAllowSuppressesSameLineAndLineAbove(t *testing.T) {
	diags, suppressed := runOn(t, `package p

func f() {
	_ = 1 //nouslint:allow linereport -- same-line waiver
	//nouslint:allow linereport -- line-above waiver
	_ = 2
	_ = 3
}
`)
	if suppressed != 2 {
		t.Errorf("suppressed = %d, want 2", suppressed)
	}
	if len(diags) != 1 {
		t.Fatalf("diags = %v, want exactly the unwaived statement", diags)
	}
}

func TestAllowRequiresReason(t *testing.T) {
	diags, suppressed := runOn(t, `package p

func f() {
	//nouslint:allow linereport
	_ = 1
}
`)
	if suppressed != 0 {
		t.Errorf("suppressed = %d, want 0: a reason-less allow must not suppress", suppressed)
	}
	var needsReason, stmt int
	for _, d := range diags {
		if strings.Contains(d.Message, "needs a reason") {
			needsReason++
		}
		if d.Message == "statement" {
			stmt++
		}
	}
	if needsReason != 1 || stmt != 1 {
		t.Errorf("got %v; want one needs-a-reason report and one surviving statement report", diags)
	}
}

func TestAllowOtherRuleDoesNotSuppress(t *testing.T) {
	diags, suppressed := runOn(t, `package p

func f() {
	_ = 1 //nouslint:allow otherrule -- aimed at a different analyzer
}
`)
	if suppressed != 0 || len(diags) != 1 {
		t.Errorf("diags=%v suppressed=%d; a directive for another rule must not apply", diags, suppressed)
	}
}

func TestMalformedDirectiveReported(t *testing.T) {
	diags, _ := runOn(t, `package p

//nouslint:alow linereport -- typo in the verb
func f() {}
`)
	found := false
	for _, d := range diags {
		if strings.Contains(d.Message, "malformed nouslint directive") {
			found = true
		}
	}
	if !found {
		t.Errorf("diags = %v, want a malformed-directive report", diags)
	}
}

func TestMultiRuleDirective(t *testing.T) {
	diags, suppressed := runOn(t, `package p

func f() {
	_ = 1 //nouslint:allow otherrule, linereport -- covers both rules
}
`)
	if suppressed != 1 || len(diags) != 0 {
		t.Errorf("diags=%v suppressed=%d; a comma list naming this rule must suppress", diags, suppressed)
	}
}
