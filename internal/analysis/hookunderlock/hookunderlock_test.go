package hookunderlock_test

import (
	"testing"

	"nous/internal/analysis/analysistest"
	"nous/internal/analysis/hookunderlock"
)

func TestHookUnderLock(t *testing.T) {
	analysistest.Run(t, "testdata", hookunderlock.Analyzer, "nous/internal/graph")
}
