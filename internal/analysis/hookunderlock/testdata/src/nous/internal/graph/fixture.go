// Fixture for the hookunderlock analyzer: a miniature of internal/graph's
// write paths — stripe locks, epoch bump, mutation emission — with the
// orderings the rule permits and the ones it must catch.
package graph

import "sync"

type MutationKind int

const (
	MutAddEdges MutationKind = iota
	MutRemoveEdge
	MutSetEdgeProp
	MutSetEdgeWeight
	MutAddVertex
	MutSetVertexProp
)

type Mutation struct {
	Kind  MutationKind
	Epoch uint64
}

type shard struct{ mu sync.RWMutex }

type Graph struct {
	shards [4]shard
	epoch  uint64
}

func (g *Graph) bump() uint64 { g.epoch++; return g.epoch }

func (g *Graph) adoptEpoch(e uint64) {}

func (g *Graph) emit(m Mutation) {}

func (g *Graph) lockEdgeShards(a, b int) {}

func (g *Graph) unlockEdgeShards(a, b int) {}

// goodAddEdge: bump and emit both under the helper-held locks.
func (g *Graph) goodAddEdge(a, b int) {
	g.lockEdgeShards(a, b)
	ep := g.bump()
	g.emit(Mutation{Kind: MutAddEdges, Epoch: ep})
	g.unlockEdgeShards(a, b)
}

// goodDeferred: a deferred unlock keeps the locks held to function end.
func (g *Graph) goodDeferred(a, b int) {
	g.lockEdgeShards(a, b)
	defer g.unlockEdgeShards(a, b)
	ep := g.bump()
	g.emit(Mutation{Kind: MutRemoveEdge, Epoch: ep})
}

// goodVertexAfterUnlock: vertex-kind mutations may deliver after the locks
// drop; only the bump/emit pairing is enforced.
func (g *Graph) goodVertexAfterUnlock(i int) {
	g.shards[i].mu.Lock()
	ep := g.bump()
	g.shards[i].mu.Unlock()
	g.emit(Mutation{Kind: MutAddVertex, Epoch: ep})
}

// goodBulk: the AddEdges idiom — a stripe-lock sweep counts as one
// acquisition at the loop, held until the unlock sweep.
func (g *Graph) goodBulk(need []bool) {
	for si := range need {
		if need[si] {
			g.shards[si].mu.Lock()
		}
	}
	ep := g.bump()
	g.emit(Mutation{Kind: MutAddEdges, Epoch: ep})
	for si := len(need) - 1; si >= 0; si-- {
		if need[si] {
			g.shards[si].mu.Unlock()
		}
	}
}

// goodStampedVar: a record variable is fine once it gets a .Epoch assignment.
func (g *Graph) goodStampedVar(a, b int) {
	m := Mutation{Kind: MutSetEdgeWeight}
	g.lockEdgeShards(a, b)
	m.Epoch = g.bump()
	g.emit(m)
	g.unlockEdgeShards(a, b)
}

func (g *Graph) badEmitAfterUnlock(a, b int) {
	g.lockEdgeShards(a, b)
	ep := g.bump()
	g.unlockEdgeShards(a, b)
	g.emit(Mutation{Kind: MutAddEdges, Epoch: ep}) // want `after the shard locks were released`
}

func (g *Graph) badStripeEmit(i int) {
	g.shards[i].mu.Lock()
	ep := g.bump()
	g.shards[i].mu.Unlock()
	g.emit(Mutation{Kind: MutSetEdgeProp, Epoch: ep}) // want `after the shard locks were released`
}

func (g *Graph) badBumpOutside(a, b int) {
	ep := g.bump() // want `epoch bump outside the shard locks`
	g.lockEdgeShards(a, b)
	g.emit(Mutation{Kind: MutAddEdges, Epoch: ep})
	g.unlockEdgeShards(a, b)
}

func (g *Graph) badEmitWithoutBump(a, b int) {
	g.lockEdgeShards(a, b)
	g.emit(Mutation{Kind: MutAddEdges, Epoch: 1}) // want `without a preceding epoch bump`
	g.unlockEdgeShards(a, b)
}

func (g *Graph) badSilentBump(a, b int) {
	g.lockEdgeShards(a, b)
	g.bump() // want `but only 0 mutation`
	g.unlockEdgeShards(a, b)
}

func (g *Graph) badUnstampedLiteral(a, b int) {
	g.lockEdgeShards(a, b)
	g.bump()
	g.emit(Mutation{Kind: MutAddEdges}) // want `without an Epoch stamp`
	g.unlockEdgeShards(a, b)
}

func (g *Graph) badUnstampedVar(a, b int) {
	m := Mutation{Kind: MutAddEdges}
	g.lockEdgeShards(a, b)
	g.bump()
	g.emit(m) // want `without an Epoch stamp`
	g.unlockEdgeShards(a, b)
}

// goodReplicatedLiteral: the follower-side replay idiom — a replica never
// mints epochs, it adopts the leader's; adoptEpoch counts as the bump.
func (g *Graph) goodReplicatedLiteral(a, b int, m Mutation) {
	g.lockEdgeShards(a, b)
	g.adoptEpoch(m.Epoch)
	g.emit(Mutation{Kind: MutAddEdges, Epoch: m.Epoch})
	g.unlockEdgeShards(a, b)
}

// goodReplicatedPassthrough: adopting the record's own epoch is the stamp
// evidence for re-emitting that record — it arrived from the wire stamped.
func (g *Graph) goodReplicatedPassthrough(a, b int, m Mutation) {
	g.lockEdgeShards(a, b)
	g.adoptEpoch(m.Epoch)
	g.emit(m)
	g.unlockEdgeShards(a, b)
}

// goodReplicatedVertex: vertex replay, like local vertex writes, may adopt
// and deliver after the lock drops.
func (g *Graph) goodReplicatedVertex(i int, m Mutation) {
	g.shards[i].mu.Lock()
	g.shards[i].mu.Unlock()
	g.adoptEpoch(m.Epoch)
	g.emit(Mutation{Kind: MutAddVertex, Epoch: m.Epoch})
}

// badReplicatedOtherRecord: adopting one record's epoch does not stamp a
// different record.
func (g *Graph) badReplicatedOtherRecord(a, b int, m, other Mutation) {
	g.lockEdgeShards(a, b)
	g.adoptEpoch(other.Epoch)
	g.emit(m) // want `without an Epoch stamp`
	g.unlockEdgeShards(a, b)
}

// badReplicatedAdoptOutside: adoption is still a bump — on an edge write
// path it must happen under the shard locks.
func (g *Graph) badReplicatedAdoptOutside(a, b int, m Mutation) {
	g.adoptEpoch(m.Epoch) // want `epoch bump outside the shard locks`
	g.lockEdgeShards(a, b)
	g.emit(m)
	g.unlockEdgeShards(a, b)
}

// allowedReplay: a justified waiver suppresses the finding.
func (g *Graph) allowedReplay(a, b int) {
	g.lockEdgeShards(a, b)
	ep := g.bump()
	g.unlockEdgeShards(a, b)
	//nouslint:allow hookunderlock -- replay harness re-emits a recorded stream
	g.emit(Mutation{Kind: MutAddEdges, Epoch: ep})
}
