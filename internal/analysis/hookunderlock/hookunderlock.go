// Package hookunderlock implements the nouslint rule guarding the mutation
// stream's ordering contract in internal/graph (see graph.MutationHook):
// edge mutations must be emitted to hooks while the write's shard locks are
// still held, and every epoch bump must be paired with an emitted,
// epoch-stamped mutation record.
//
// The contract is load-bearing twice over. First, emitting an edge mutation
// after the locks drop lets a concurrent remover slip its MutRemoveEdge into
// the stream ahead of the insertion's MutAddEdges — the WAL-replay
// resurrection hazard PR 4 fixed: replay applies add after remove and a
// deleted edge comes back from the dead. Second, a write path that bumps the
// epoch without emitting (or emits a record without its epoch) silently
// desynchronizes every subscriber — the WAL loses the write, the temporal
// index drifts from the graph, and epoch-keyed caches serve stale artifacts
// tagged as fresh.
//
// Concretely, inside internal/graph the analyzer checks per function:
//
//   - an emit of an edge-kind mutation (MutAddEdges, MutRemoveEdge,
//     MutSetEdgeProp, MutSetEdgeWeight — or a record of unknown kind) must
//     sit between shard-lock acquisition and release; deferred unlocks keep
//     the locks held to the end of the function.
//   - on such edge write paths, the epoch bump must also happen under the
//     locks (the bump-under-lock rule that stops readers from being tagged
//     with an epoch newer than the state they saw).
//   - every bump() must be followed by an emit in the same function, and
//     every emit must be preceded by a bump.
//   - the emitted record must carry its epoch: a Mutation literal needs an
//     explicit Epoch field; a record variable needs a `.Epoch =` assignment
//     before the emit.
//
// Vertex-kind mutations intentionally deliver after the locks drop (vertex
// writes touch one shard; there is no cross-record ordering to protect), so
// they are exempt from the under-lock requirement but not from the
// bump/emit pairing.
//
// Follower-side replay paths (internal/graph/replicate.go) obey the same
// contract with one substitution: a replica never mints epochs, it adopts the
// leader's via adoptEpoch. The analyzer therefore treats adoptEpoch as the
// epoch bump, and for a re-emitted record variable m it accepts a preceding
// adoptEpoch(m.Epoch) call as the stamp evidence — the record arrived from
// the wire already carrying the epoch the replica just adopted.
package hookunderlock

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"nous/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "hookunderlock",
	Doc: "in internal/graph, edge mutations must be emitted (epoch-stamped) while the " +
		"write's shard locks are held, preserving add-before-remove per edge",
	Run: run,
}

const gatedPkg = "internal/graph"

var edgeKinds = map[string]bool{
	"MutAddEdges":      true,
	"MutRemoveEdge":    true,
	"MutSetEdgeProp":   true,
	"MutSetEdgeWeight": true,
}

var vertexKinds = map[string]bool{
	"MutAddVertex":     true,
	"MutSetVertexProp": true,
}

func run(pass *analysis.Pass) (any, error) {
	if !analysis.PkgPathIs(pass.Pkg.Path(), gatedPkg) {
		return nil, nil
	}
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset.Position(f.Pos()).Filename) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil, nil
}

type eventKind int

const (
	evLock eventKind = iota
	evUnlock
	evDeferUnlock
	evBump
	evEmit
)

type event struct {
	kind eventKind
	pos  token.Pos
	call *ast.CallExpr // for evEmit
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	var events []event
	// Loops that sweep stripe locks count as one acquisition/release at the
	// loop's position (the AddEdges bulk-write idiom); dedup by loop node.
	loopSeen := make(map[ast.Node]eventKind)

	var loops []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			loops = append(loops, n)
		case *ast.DeferStmt:
			if kind, ok := classifyLockCall(pass, n.Call); ok && kind == evUnlock {
				events = append(events, event{kind: evDeferUnlock, pos: n.Pos()})
			}
			return false // a deferred Lock would be nonsense; don't descend
		case *ast.CallExpr:
			if kind, ok := classifyLockCall(pass, n); ok {
				if loop := innermostLoop(loops, n.Pos()); loop != nil {
					if prev, seen := loopSeen[loop]; !seen || prev != kind {
						loopSeen[loop] = kind
						events = append(events, event{kind: kind, pos: loop.Pos()})
					}
					return true
				}
				events = append(events, event{kind: kind, pos: n.Pos()})
				return true
			}
			switch analysis.CalleeName(n) {
			case "bump", "adoptEpoch":
				events = append(events, event{kind: evBump, pos: n.Pos()})
			case "emit":
				events = append(events, event{kind: evEmit, pos: n.Pos(), call: n})
			}
		}
		return true
	})

	sort.SliceStable(events, func(i, j int) bool { return events[i].pos < events[j].pos })

	edgePath := false
	for _, ev := range events {
		if ev.kind == evEmit && emitKindIsEdge(pass, ev.call) {
			edgePath = true
			break
		}
	}

	depth, bumps, emits := 0, 0, 0
	var lastBumpPos token.Pos
	for _, ev := range events {
		switch ev.kind {
		case evLock:
			depth++
		case evUnlock:
			if depth > 0 {
				depth--
			}
		case evDeferUnlock:
			// Keeps the locks held until return; no depth change.
		case evBump:
			bumps++
			lastBumpPos = ev.pos
			if edgePath && depth == 0 {
				pass.Reportf(ev.pos, "epoch bump outside the shard locks on an edge write path: readers could be tagged with an epoch newer than the state they observed")
			}
		case evEmit:
			emits++
			if bumps == 0 {
				pass.Reportf(ev.pos, "mutation emitted without a preceding epoch bump in this function")
			}
			if emitKindIsEdge(pass, ev.call) && depth == 0 {
				pass.Reportf(ev.pos, "edge mutation emitted after the shard locks were released: a concurrent remover can reorder the stream (add-before-remove per edge is lost, WAL replay may resurrect the edge)")
			}
			checkEpochStamp(pass, fd, ev.call)
		}
	}
	if bumps > emits {
		pass.Reportf(lastBumpPos, "epoch bumped %d time(s) but only %d mutation(s) emitted: WAL and temporal subscribers will miss a write", bumps, emits)
	}
}

// classifyLockCall recognizes shard-lock acquisition/release: the
// lock*/unlock* helper methods (lockEdgeShards) and direct indexed
// stripe[i].mu.Lock()/Unlock() calls. Read locks are not write barriers for
// the mutation stream and are ignored.
func classifyLockCall(pass *analysis.Pass, call *ast.CallExpr) (eventKind, bool) {
	name := analysis.CalleeName(call)
	if strings.HasPrefix(name, "lock") {
		return evLock, true
	}
	if strings.HasPrefix(name, "unlock") {
		return evUnlock, true
	}
	if name != "Lock" && name != "Unlock" {
		return 0, false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return 0, false
	}
	muSel, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok {
		return 0, false
	}
	tv, ok := pass.TypesInfo.Types[muSel]
	if !ok || !analysis.IsSyncMutex(tv.Type) {
		return 0, false
	}
	if _, ok := ast.Unparen(muSel.X).(*ast.IndexExpr); !ok {
		return 0, false // not a stripe lock (hookMu and friends)
	}
	if name == "Lock" {
		return evLock, true
	}
	return evUnlock, true
}

// epochSelOn reports whether expr is a selector `<ident>.Epoch` whose base
// identifier resolves to obj.
func epochSelOn(pass *analysis.Pass, expr ast.Expr, obj types.Object) bool {
	sel, ok := ast.Unparen(expr).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Epoch" {
		return false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	return ok && pass.TypesInfo.Uses[id] == obj
}

func innermostLoop(loops []ast.Node, pos token.Pos) ast.Node {
	var best ast.Node
	for _, l := range loops {
		if l.Pos() <= pos && pos <= l.End() {
			if best == nil || l.Pos() > best.Pos() {
				best = l
			}
		}
	}
	return best
}

// emitKindIsEdge classifies the mutation record passed to emit. Unknown
// kinds (records built elsewhere and passed in, like mutateEdge's parameter)
// are conservatively treated as edge mutations.
func emitKindIsEdge(pass *analysis.Pass, call *ast.CallExpr) bool {
	if len(call.Args) != 1 {
		return true
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.CompositeLit)
	if !ok {
		return true
	}
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Kind" {
			if val, ok := ast.Unparen(kv.Value).(*ast.Ident); ok {
				if vertexKinds[val.Name] {
					return false
				}
				return true
			}
			if val, ok := ast.Unparen(kv.Value).(*ast.SelectorExpr); ok {
				if vertexKinds[val.Sel.Name] {
					return false
				}
			}
			return true
		}
	}
	return true
}

// checkEpochStamp verifies the emitted record carries its epoch: a Mutation
// literal must set Epoch explicitly; a record variable must either receive a
// `.Epoch =` assignment earlier in the function or have its own epoch adopted
// via adoptEpoch(m.Epoch) — the replicated-apply idiom, where the record
// arrives from the leader already stamped.
func checkEpochStamp(pass *analysis.Pass, fd *ast.FuncDecl, call *ast.CallExpr) {
	if len(call.Args) != 1 {
		return
	}
	arg := ast.Unparen(call.Args[0])
	switch arg := arg.(type) {
	case *ast.CompositeLit:
		for _, el := range arg.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Epoch" {
					return
				}
			}
		}
		pass.Reportf(call.Pos(), "mutation emitted without an Epoch stamp: subscribers cannot totally order the stream")
	case *ast.Ident:
		obj := pass.TypesInfo.Uses[arg]
		stamped := false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if stamped || (n != nil && n.Pos() >= call.Pos()) {
				return !stamped
			}
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, l := range n.Lhs {
					if epochSelOn(pass, l, obj) {
						stamped = true
					}
				}
			case *ast.CallExpr:
				if analysis.CalleeName(n) == "adoptEpoch" && len(n.Args) == 1 && epochSelOn(pass, n.Args[0], obj) {
					stamped = true
				}
			}
			return true
		})
		if !stamped {
			pass.Reportf(call.Pos(), "mutation record %s emitted without an Epoch stamp in this function (no .Epoch assignment and no adoptEpoch(%s.Epoch))", arg.Name, arg.Name)
		}
	}
}
