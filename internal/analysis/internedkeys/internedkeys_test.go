package internedkeys_test

import (
	"testing"

	"nous/internal/analysis/analysistest"
	"nous/internal/analysis/internedkeys"
)

func TestInternedKeys(t *testing.T) {
	analysistest.Run(t, "testdata", internedkeys.Analyzer,
		"nous/internal/graph", "nous/internal/graph/symtab", "nous/internal/qa")
}
