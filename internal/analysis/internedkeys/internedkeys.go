// Package internedkeys implements the nouslint rule keeping internal/graph's
// index state symbol-interned: the memory-lean core stores labels, property
// keys and property values as dense symtab.SymIDs, and every persistent map
// inside the package — adjacency, label index, property side tables — must
// key off those IDs. A raw string key reintroduces per-entry string headers
// and per-lookup hashing of variable-length data, quietly undoing the
// columnar layout's bytes-per-fact budget without failing any test.
//
// The rule inspects package-level type declarations in internal/graph:
// unexported struct fields and unexported named map types must not use a
// string-keyed map. Exported types (Vertex, Edge, EdgeSpec, Mutation, ...)
// are exempt — string props there are the materialization contract at the
// API boundary, where symbols are resolved back to strings.
package internedkeys

import (
	"go/ast"
	"go/token"
	"go/types"

	"nous/internal/analysis"
)

// graphPkg is the package (matched by path suffix) whose internal state the
// rule guards. The symtab subpackage is not matched: it owns the
// string<->SymID boundary and necessarily keys a map by string.
const graphPkg = "internal/graph"

var Analyzer = &analysis.Analyzer{
	Name: "internedkeys",
	Doc: "internal/graph index state (unexported structs and named map types) must key " +
		"maps by symtab.SymID, not raw strings; only exported API types carry string maps",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	if !analysis.PkgPathIs(pass.Pkg.Path(), graphPkg) {
		return nil, nil
	}
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset.Position(f.Pos()).Filename) {
			continue
		}
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || ts.Name.IsExported() {
					continue
				}
				checkType(pass, ts)
			}
		}
	}
	return nil, nil
}

func checkType(pass *analysis.Pass, ts *ast.TypeSpec) {
	switch t := ts.Type.(type) {
	case *ast.StructType:
		for _, field := range t.Fields.List {
			mt, ok := field.Type.(*ast.MapType)
			if !ok || !stringKeyed(pass, mt) {
				continue
			}
			pass.Reportf(field.Pos(),
				"string-keyed map field in unexported struct %s: graph index state must key by symtab.SymID, not raw strings",
				ts.Name.Name)
		}
	case *ast.MapType:
		if stringKeyed(pass, t) {
			pass.Reportf(ts.Pos(),
				"string-keyed map type %s: graph index state must key by symtab.SymID, not raw strings",
				ts.Name.Name)
		}
	}
}

// stringKeyed reports whether the map's key type has string as its
// underlying type (covers both `string` and string-based defined types).
func stringKeyed(pass *analysis.Pass, mt *ast.MapType) bool {
	kt := pass.TypesInfo.TypeOf(mt.Key)
	if kt == nil {
		return false
	}
	b, ok := kt.Underlying().(*types.Basic)
	return ok && b.Kind() == types.String
}
