// Fixture: packages outside internal/graph may key maps however they like;
// the rule only guards the graph core's resident state.
package qa

type planCache struct {
	byQuestion map[string]int
}

var _ = planCache{}
