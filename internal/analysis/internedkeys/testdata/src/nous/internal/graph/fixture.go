// Fixture for the internedkeys analyzer: a miniature of internal/graph's
// storage types — interned indexes the rule permits, raw string keys it must
// catch, and the exported API types it must leave alone.
package graph

type symID uint32

// Vertex is exported API: string props are the materialization contract at
// the package boundary, so the rule stays silent here.
type Vertex struct {
	ID    int64
	Props map[string]string
}

// propMap models the interned property side table: SymID keys are fine.
type propMap map[symID]string

// shard models a lock stripe's index state.
type shard struct {
	out     map[int64][]uint32
	byLabel map[symID][]uint32
	names   map[string]int64 // want `symtab.SymID`
}

// labelIndex is an unexported named map with a raw string key.
type labelIndex map[string][]uint32 // want `symtab.SymID`

// aliasKey is string-based, so keying by it is still a raw-string key.
type aliasKey string

type aliasIndex map[aliasKey][]uint32 // want `symtab.SymID`

// waived documents a deliberate exception through the allow protocol.
type waived struct {
	//nouslint:allow internedkeys -- migration shim keyed by legacy predicate text
	legacy map[string]symID
}

var _ = propMap{}
var _ = shard{}
var _ = labelIndex{}
var _ = aliasIndex{}
var _ = waived{}
