// Fixture: the symtab subpackage owns the string<->SymID boundary, so its
// string-keyed interner map must not be flagged.
package symtab

type SymID uint32

type table struct {
	ids map[string]SymID
}

var _ = table{}
