// Cross-package fact propagation. A Fact is a serializable claim an analyzer
// proves about a package-level object (or a whole package) while analyzing
// the package that declares it, and consumes later — possibly in a different
// process — while analyzing a package that imports it. Facts are what make
// the suite *modular*: windowthread can know that a callee in another package
// drops its window, and scanescape can know that a callee stashes its
// *graph.EdgeScan parameter, without ever seeing that callee's source.
//
// Facts travel two ways:
//
//   - in-process, through a shared FactStore (the standalone driver and
//     analysistest analyze whole dependency slices in one process, in
//     dependency order);
//   - on disk, gob-encoded into .vetx files (the go vet -vettool unit-checker
//     protocol analyzes one package per process; the go command hands each
//     invocation its dependencies' vetx files and a path to write its own).
//
// Identity is textual, not pointer-based: a fact is keyed by (analyzer,
// package path, object path, fact type), where the object path is "Name" for
// a package-level object and "Type.Method" for a method. The same function is
// therefore found whether its package was type-checked from source (the
// declaring pass) or loaded from gc export data (an importing pass) — the two
// yield distinct *types.Package values, so object identity cannot be the key.
// The flip side is a deliberate restriction: facts attach only to
// package-level objects and methods of package-level named types, which is
// exactly what the analyzers need (functions and methods).
package analysis

import (
	"bytes"
	"crypto/sha256"
	"encoding/gob"
	"errors"
	"fmt"
	"go/types"
	"reflect"
	"sort"
	"strings"
	"sync"
)

// Fact is the marker interface for analyzer facts. Implementations must be
// pointers to gob-encodable structs and should implement fmt.Stringer — the
// string form is what // wantfact fixture assertions match against.
type Fact interface{ AFact() }

// ObjectPath names a package-level object, or a method of a package-level
// named type, relative to its package: "Name" or "Type.Method". It reports
// false for objects facts cannot attach to (locals, fields, builtins,
// interface methods of unnamed types).
func ObjectPath(obj types.Object) (string, bool) {
	if obj == nil || obj.Pkg() == nil {
		return "", false
	}
	if fn, ok := obj.(*types.Func); ok {
		if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
			t := recv.Type()
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			named, ok := t.(*types.Named)
			if !ok {
				return "", false
			}
			return named.Obj().Name() + "." + fn.Name(), true
		}
	}
	if obj.Parent() != obj.Pkg().Scope() {
		return "", false
	}
	return obj.Name(), true
}

// resolveObject is ObjectPath's inverse against a concrete package: it finds
// the named object, descending through one "Type.Method" level. Unexported
// objects of packages loaded from gc export data are not present in the
// scope, so resolution can fail for facts that could never be consumed
// cross-package anyway.
func resolveObject(pkg *types.Package, path string) types.Object {
	if pkg == nil {
		return nil
	}
	tname, mname, isMethod := strings.Cut(path, ".")
	obj := pkg.Scope().Lookup(tname)
	if !isMethod || obj == nil {
		return obj
	}
	tn, ok := obj.(*types.TypeName)
	if !ok {
		return nil
	}
	named, ok := tn.Type().(*types.Named)
	if !ok {
		return nil
	}
	for i := 0; i < named.NumMethods(); i++ {
		if m := named.Method(i); m.Name() == mname {
			return m
		}
	}
	return nil
}

// factKey identifies one stored fact.
type factKey struct {
	analyzer string
	pkg      string
	obj      string // "" for package facts
	typ      reflect.Type
}

// ObjectFact pairs a fact with the object it describes, as reported by
// AllObjectFacts. Object is resolved when the pass can see the package (its
// own, or a transitive import); the textual key is always present.
type ObjectFact struct {
	PkgPath string
	ObjPath string
	Object  types.Object // nil when unresolvable from the current pass
	Fact    Fact
}

// FactStore accumulates facts across passes. Drivers share one store per
// analysis run; the unit-checker driver seeds it from dependency vetx files
// and serializes the union back out. All methods are safe for concurrent
// use — the standalone driver analyzes independent packages in parallel
// against one store (dependency ordering guarantees a package's own facts
// are complete before any importer reads them, but siblings race on the map
// itself).
type FactStore struct {
	mu    sync.RWMutex
	facts map[factKey]Fact
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore { return &FactStore{facts: make(map[factKey]Fact)} }

func validFact(f Fact) error {
	t := reflect.TypeOf(f)
	if t == nil || t.Kind() != reflect.Pointer || t.Elem().Kind() != reflect.Struct {
		return fmt.Errorf("fact %T must be a pointer to a struct", f)
	}
	return nil
}

func (s *FactStore) put(analyzer, pkg, obj string, f Fact) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.facts[factKey{analyzer, pkg, obj, reflect.TypeOf(f)}] = f
}

// get copies a stored fact into ptr (which selects the fact type) and reports
// whether one was found.
func (s *FactStore) get(analyzer, pkg, obj string, ptr Fact) bool {
	s.mu.RLock()
	f, ok := s.facts[factKey{analyzer, pkg, obj, reflect.TypeOf(ptr)}]
	s.mu.RUnlock()
	if !ok {
		return false
	}
	reflect.ValueOf(ptr).Elem().Set(reflect.ValueOf(f).Elem())
	return true
}

// ObjectFacts returns the object facts recorded for one analyzer about one
// package, sorted by object path then fact type. Objects are not resolved —
// callers outside a Pass (fixture checkers, debug dumps) work textually.
func (s *FactStore) ObjectFacts(analyzer, pkgPath string) []ObjectFact {
	var out []ObjectFact
	s.mu.RLock()
	defer s.mu.RUnlock()
	for k, f := range s.facts {
		if k.analyzer == analyzer && k.pkg == pkgPath && k.obj != "" {
			out = append(out, ObjectFact{PkgPath: k.pkg, ObjPath: k.obj, Fact: f})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].ObjPath != out[j].ObjPath {
			return out[i].ObjPath < out[j].ObjPath
		}
		return gobName(out[i].Fact) < gobName(out[j].Fact)
	})
	return out
}

// --- vetx serialization -----------------------------------------------------

// vetxMagic versions the on-disk container; bump on any wire-format change.
const vetxMagic = "nousvetx1 "

// ErrSchemaMismatch reports a vetx file written by a nouslint build with a
// different fact schema. Drivers treat it as a cache miss (no facts), never
// as corruption: the go command re-runs dependencies' analysis when the tool
// version changes, so a mismatched file is simply stale.
var ErrSchemaMismatch = errors.New("vetx fact schema mismatch")

// wireFact is the gob wire form of one fact.
type wireFact struct {
	Analyzer string
	PkgPath  string
	ObjPath  string // "" = package fact
	Fact     Fact
}

// SchemaFingerprint hashes the fact schema of a set of analyzers: every
// declared fact type's registered name plus its field names and types. Two
// nouslint builds interoperate on vetx files iff their fingerprints match;
// the fingerprint is also folded into the -V=full version string so the go
// command's result cache keys on it.
func SchemaFingerprint(analyzers []*Analyzer) string {
	var lines []string
	for _, a := range analyzers {
		for _, f := range a.FactTypes {
			t := reflect.TypeOf(f).Elem()
			var b strings.Builder
			fmt.Fprintf(&b, "%s\x00%s", a.Name, gobName(f))
			for i := 0; i < t.NumField(); i++ {
				fmt.Fprintf(&b, "\x00%s %s", t.Field(i).Name, t.Field(i).Type.String())
			}
			lines = append(lines, b.String())
		}
	}
	sort.Strings(lines)
	h := sha256.Sum256([]byte(strings.Join(lines, "\n")))
	return fmt.Sprintf("%x", h[:8])
}

// gobName is the stable name a fact type is gob-registered under.
func gobName(f Fact) string {
	return "nouslint." + reflect.TypeOf(f).Elem().Name()
}

// RegisterFactTypes registers every declared fact type with gob under its
// stable name. Idempotent; drivers and tests call it once up front.
func RegisterFactTypes(analyzers []*Analyzer) {
	for _, a := range analyzers {
		for _, f := range a.FactTypes {
			if err := validFact(f); err != nil {
				panic(fmt.Sprintf("analyzer %s: %v", a.Name, err))
			}
			gob.RegisterName(gobName(f), f)
		}
	}
}

// EncodeFacts serializes every fact in the store whose analyzer and type are
// declared by analyzers, producing a self-contained vetx payload (imported
// dependency facts are re-exported, so consumers only ever need their direct
// dependencies' files).
func EncodeFacts(s *FactStore, analyzers []*Analyzer) ([]byte, error) {
	declared := make(map[string]map[reflect.Type]bool)
	for _, a := range analyzers {
		m := make(map[reflect.Type]bool)
		for _, f := range a.FactTypes {
			m[reflect.TypeOf(f)] = true
		}
		declared[a.Name] = m
	}
	var facts []wireFact
	s.mu.RLock()
	for k, f := range s.facts {
		if m, ok := declared[k.analyzer]; ok && m[k.typ] {
			facts = append(facts, wireFact{Analyzer: k.analyzer, PkgPath: k.pkg, ObjPath: k.obj, Fact: f})
		}
	}
	s.mu.RUnlock()
	sort.Slice(facts, func(i, j int) bool {
		a, b := facts[i], facts[j]
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		if a.PkgPath != b.PkgPath {
			return a.PkgPath < b.PkgPath
		}
		if a.ObjPath != b.ObjPath {
			return a.ObjPath < b.ObjPath
		}
		return gobName(a.Fact) < gobName(b.Fact)
	})
	var buf bytes.Buffer
	buf.WriteString(vetxMagic)
	buf.WriteString(SchemaFingerprint(analyzers))
	buf.WriteByte('\n')
	if err := gob.NewEncoder(&buf).Encode(facts); err != nil {
		return nil, fmt.Errorf("encoding facts: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeFacts merges a vetx payload into the store. A payload written under a
// different fact schema (or an unparseable one — e.g. a fact type this build
// does not know) returns ErrSchemaMismatch; callers treat that as "no facts",
// not as an error worth failing the run over.
func DecodeFacts(data []byte, analyzers []*Analyzer, s *FactStore) error {
	head, body, ok := bytes.Cut(data, []byte{'\n'})
	if !ok || !bytes.HasPrefix(head, []byte(vetxMagic)) {
		return ErrSchemaMismatch
	}
	if string(head[len(vetxMagic):]) != SchemaFingerprint(analyzers) {
		return ErrSchemaMismatch
	}
	var facts []wireFact
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&facts); err != nil {
		return fmt.Errorf("%w: %v", ErrSchemaMismatch, err)
	}
	for _, wf := range facts {
		if wf.Fact == nil {
			continue
		}
		s.put(wf.Analyzer, wf.PkgPath, wf.ObjPath, wf.Fact)
	}
	return nil
}
