// Fixture for the shardorder analyzer: lock-striped shards with ascending
// (good) and non-ascending (flagged) acquisition shapes.
package a

import "sync"

type shard struct {
	mu sync.RWMutex
}

type Graph struct {
	shards [8]shard
}

// sorted3 is the canonical ascending conditional-swap network; the analyzer
// verifies it by exhaustive simulation.
func sorted3(a, b, c int) (int, int, int) {
	if a > b {
		a, b = b, a
	}
	if b > c {
		b, c = c, b
	}
	if a > b {
		a, b = b, a
	}
	return a, b, c
}

// reversed3 sorts descending and must NOT pass verification.
func reversed3(a, b, c int) (int, int, int) {
	if a < b {
		a, b = b, a
	}
	if b < c {
		b, c = c, b
	}
	if a < b {
		a, b = b, a
	}
	return a, b, c
}

func (g *Graph) goodRangeSweep() {
	for i := range g.shards {
		g.shards[i].mu.Lock()
	}
	for i := range g.shards {
		g.shards[i].mu.Unlock()
	}
}

func (g *Graph) goodAscendingFor(n int) {
	for i := 0; i < n; i++ {
		g.shards[i].mu.RLock()
	}
	for i := 0; i < n; i++ {
		g.shards[i].mu.RUnlock()
	}
}

func (g *Graph) goodConstPair() {
	g.shards[1].mu.Lock()
	g.shards[3].mu.Lock()
	g.shards[3].mu.Unlock()
	g.shards[1].mu.Unlock()
}

func (g *Graph) goodSortedTriple(x, y, z int) {
	a, b, c := sorted3(x, y, z)
	g.shards[a].mu.Lock()
	g.shards[b].mu.Lock()
	g.shards[c].mu.Lock()
	g.shards[c].mu.Unlock()
	g.shards[b].mu.Unlock()
	g.shards[a].mu.Unlock()
}

func (g *Graph) goodSingle(i int) {
	g.shards[i].mu.Lock()
	g.shards[i].mu.Unlock()
}

func (g *Graph) badDescendingLoop() {
	for i := len(g.shards) - 1; i >= 0; i-- {
		g.shards[i].mu.Lock() // want `descending loop`
	}
}

func (g *Graph) badConstPair() {
	g.shards[3].mu.Lock()
	g.shards[1].mu.Lock() // want `ascending shard index`
	g.shards[1].mu.Unlock()
	g.shards[3].mu.Unlock()
}

func (g *Graph) badSortedOutOfOrder(x, y, z int) {
	a, b, c := sorted3(x, y, z)
	g.shards[c].mu.Lock() // want `out of the order returned by sorted3`
	g.shards[b].mu.Lock()
	g.shards[a].mu.Lock()
	g.shards[a].mu.Unlock()
	g.shards[b].mu.Unlock()
	g.shards[c].mu.Unlock()
}

func (g *Graph) badUnknownProvenance(x, y int) {
	g.shards[x].mu.Lock()
	g.shards[y].mu.Lock() // want `cannot prove ascending acquisition order`
	g.shards[y].mu.Unlock()
	g.shards[x].mu.Unlock()
}

func (g *Graph) badDescendingHelper(x, y, z int) {
	a, b, c := reversed3(x, y, z)
	g.shards[a].mu.Lock()
	g.shards[b].mu.Lock() // want `cannot prove ascending acquisition order`
	g.shards[c].mu.Lock()
	g.shards[c].mu.Unlock()
	g.shards[b].mu.Unlock()
	g.shards[a].mu.Unlock()
}

func (g *Graph) allowedByDirective(x, y int) {
	g.shards[x].mu.Lock()
	//nouslint:allow shardorder -- caller contract guarantees x < y
	g.shards[y].mu.Lock()
	g.shards[y].mu.Unlock()
	g.shards[x].mu.Unlock()
}
