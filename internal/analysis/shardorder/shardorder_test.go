package shardorder_test

import (
	"testing"

	"nous/internal/analysis/analysistest"
	"nous/internal/analysis/shardorder"
)

func TestShardOrder(t *testing.T) {
	analysistest.Run(t, "testdata", shardorder.Analyzer, "a")
}
