// Package shardorder implements the nouslint rule behind the graph store's
// deadlock freedom: every multi-shard writer acquires stripe locks in
// ascending shard index (see internal/graph's package comment). Two writers
// acquiring overlapping stripe sets in different orders deadlock only under
// contention, so a violation passes every functional test and the race
// detector, then wedges the server in production.
//
// The analyzer looks at acquisitions of the form base[i].mu.Lock() (or
// RLock) where mu is a sync.Mutex/RWMutex living in an indexed slice or
// array — the lock-striping idiom — and demands a proof of ascending order
// for every function that acquires more than one:
//
//   - acquisitions driven by a loop variable are fine in `for i := range`
//     and ascending three-clause loops, and flagged in descending or
//     unclassifiable loops;
//   - straight-line sequences of constant indexes must be strictly
//     increasing;
//   - straight-line sequences of variable indexes must take them, in result
//     order, from a single call to a verified ordering helper — a function
//     in the same package whose body is a conditional-swap sorting network
//     (like graph.sorted3), which the analyzer verifies by simulating it
//     over every input permutation;
//   - anything else (conditional acquisition order, indexes of unknown
//     provenance) cannot be proven ascending and is flagged.
//
// Unlock order is irrelevant to deadlock freedom and is not checked.
package shardorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"

	"nous/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "shardorder",
	Doc: "functions locking more than one lock-striped shard (shards[i].mu) must acquire " +
		"the stripes in ascending index order",
	Run: run,
}

// lockEvent is one base[idx].mu.Lock()/RLock() acquisition.
type lockEvent struct {
	pos  token.Pos
	base string   // printed form of the indexed expression, e.g. "g.shards"
	idx  ast.Expr // the index expression
}

// loopInfo describes one for/range statement enclosing lock events.
type loopInfo struct {
	node ast.Node
	v    types.Object // loop index variable (nil when none)
	dir  int          // +1 ascending, -1 descending, 0 unknown
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, f, fd)
		}
	}
	return nil, nil
}

func checkFunc(pass *analysis.Pass, file *ast.File, fd *ast.FuncDecl) {
	var loops []loopInfo
	var events []lockEvent
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			var v types.Object
			if id, ok := n.Key.(*ast.Ident); ok {
				v = pass.TypesInfo.Defs[id]
				if v == nil {
					v = pass.TypesInfo.Uses[id]
				}
			}
			loops = append(loops, loopInfo{node: n, v: v, dir: +1})
		case *ast.ForStmt:
			loops = append(loops, classifyFor(pass, n))
		case *ast.CallExpr:
			if ev, ok := asLockEvent(pass, n); ok {
				events = append(events, ev)
			}
		}
		return true
	})
	if len(events) == 0 {
		return
	}

	// Split loop-driven acquisitions from straight-line ones.
	straight := make(map[string][]lockEvent) // base -> ordered events
	for _, ev := range events {
		if loop := innermostLoop(loops, ev); loop != nil && loop.v != nil && analysis.MentionsIdent(pass.TypesInfo, ev.idx, loop.v) {
			switch loop.dir {
			case +1: // ascending loop: the canonical stripe sweep
			case -1:
				pass.Reportf(ev.pos, "%s locked under a descending loop: stripe locks must be acquired in ascending shard index", ev.base)
			default:
				pass.Reportf(ev.pos, "%s locked under a loop whose direction cannot be proven ascending", ev.base)
			}
			continue
		}
		straight[ev.base] = append(straight[ev.base], ev)
	}

	for base, evs := range straight {
		sort.Slice(evs, func(i, j int) bool { return evs[i].pos < evs[j].pos })
		if len(evs) < 2 {
			continue
		}
		checkStraightLine(pass, file, base, evs)
	}
}

// checkStraightLine proves (or refutes) ascending order for a straight-line
// multi-lock sequence on one base.
func checkStraightLine(pass *analysis.Pass, file *ast.File, base string, evs []lockEvent) {
	// All-constant indexes: require strictly increasing.
	if vals, ok := constIndexes(pass, evs); ok {
		for i := 1; i < len(vals); i++ {
			if vals[i] <= vals[i-1] {
				pass.Reportf(evs[i].pos, "%s[%d] locked after %s[%d]: stripe locks must be acquired in ascending shard index",
					base, vals[i], base, vals[i-1])
			}
		}
		return
	}
	// Variable indexes: every index must be a plain identifier, all defined
	// by one `a, b, c := orderer(...)` assignment, locked in result order.
	if objs, ok := identIndexes(pass, evs); ok {
		if src := commonOrdererAssign(pass, file, objs); src != nil {
			for i, obj := range objs {
				if src.results[i] != obj {
					pass.Reportf(evs[i].pos, "%s[%s] locked out of the order returned by %s: acquire stripes in the helper's (ascending) result order",
						base, obj.Name(), src.fn.Name.Name)
					return
				}
			}
			return
		}
	}
	pass.Reportf(evs[1].pos, "cannot prove ascending acquisition order for %s stripe locks: take indexes, in result order, from an ascending-ordering helper like sorted3, or lock in an ascending loop",
		base)
}

// asLockEvent matches base[idx].mu.Lock() / base[idx].mu.RLock().
func asLockEvent(pass *analysis.Pass, call *ast.CallExpr) (lockEvent, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
		return lockEvent{}, false
	}
	muSel, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok {
		return lockEvent{}, false
	}
	if tv, ok := pass.TypesInfo.Types[muSel]; !ok || !analysis.IsSyncMutex(tv.Type) {
		return lockEvent{}, false
	}
	idxExpr, ok := ast.Unparen(muSel.X).(*ast.IndexExpr)
	if !ok {
		return lockEvent{}, false
	}
	return lockEvent{pos: call.Pos(), base: analysis.ExprString(idxExpr.X), idx: idxExpr.Index}, true
}

func classifyFor(pass *analysis.Pass, n *ast.ForStmt) loopInfo {
	info := loopInfo{node: n}
	assign, ok := n.Init.(*ast.AssignStmt)
	if !ok || len(assign.Lhs) != 1 {
		return info
	}
	id, ok := assign.Lhs[0].(*ast.Ident)
	if !ok {
		return info
	}
	info.v = pass.TypesInfo.Defs[id]
	if info.v == nil {
		info.v = pass.TypesInfo.Uses[id]
	}
	cond, _ := n.Cond.(*ast.BinaryExpr)
	switch post := n.Post.(type) {
	case *ast.IncDecStmt:
		up := post.Tok == token.INC
		if cond == nil {
			return info
		}
		if up && (cond.Op == token.LSS || cond.Op == token.LEQ) {
			info.dir = +1
		} else if !up && (cond.Op == token.GEQ || cond.Op == token.GTR) {
			info.dir = -1
		}
	}
	return info
}

func innermostLoop(loops []loopInfo, ev lockEvent) *loopInfo {
	var best *loopInfo
	for i := range loops {
		l := &loops[i]
		if l.node.Pos() <= ev.pos && ev.pos <= l.node.End() {
			if best == nil || l.node.Pos() > best.node.Pos() {
				best = l
			}
		}
	}
	return best
}

func constIndexes(pass *analysis.Pass, evs []lockEvent) ([]int64, bool) {
	vals := make([]int64, len(evs))
	for i, ev := range evs {
		tv, ok := pass.TypesInfo.Types[ev.idx]
		if !ok || tv.Value == nil {
			return nil, false
		}
		n, err := strconv.ParseInt(tv.Value.ExactString(), 10, 64)
		if err != nil {
			return nil, false
		}
		vals[i] = n
	}
	return vals, true
}

func identIndexes(pass *analysis.Pass, evs []lockEvent) ([]types.Object, bool) {
	objs := make([]types.Object, len(evs))
	for i, ev := range evs {
		id, ok := ast.Unparen(ev.idx).(*ast.Ident)
		if !ok {
			return nil, false
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil {
			return nil, false
		}
		objs[i] = obj
	}
	return objs, true
}

// ordererAssign ties a lock sequence's index variables to the single
// multi-assignment that produced them from a verified ordering helper.
type ordererAssign struct {
	fn      *ast.FuncDecl
	results []types.Object // assignment LHS objects, in result order
}

// commonOrdererAssign finds the one `a, b, c := f(...)` statement defining
// every object in objs, with f a verified ascending orderer declared in this
// package, and returns the LHS objects in declaration order.
func commonOrdererAssign(pass *analysis.Pass, file *ast.File, objs []types.Object) *ordererAssign {
	var found *ordererAssign
	ast.Inspect(file, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		assign, ok := n.(*ast.AssignStmt)
		if !ok || assign.Tok != token.DEFINE || len(assign.Rhs) != 1 {
			return true
		}
		call, ok := assign.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		var lhs []types.Object
		for _, l := range assign.Lhs {
			id, ok := l.(*ast.Ident)
			if !ok {
				return true
			}
			lhs = append(lhs, pass.TypesInfo.Defs[id])
		}
		// Every locked index must come from this assignment.
		defined := make(map[types.Object]bool, len(lhs))
		for _, o := range lhs {
			defined[o] = true
		}
		for _, o := range objs {
			if !defined[o] {
				return true
			}
		}
		fn := analysis.CalleeFunc(pass.TypesInfo, call)
		if fn == nil {
			return true
		}
		decl := funcDeclOf(pass, fn)
		if decl == nil || !isAscendingOrderer(decl) {
			return true
		}
		found = &ordererAssign{fn: decl, results: lhs}
		return false
	})
	return found
}

// funcDeclOf finds the declaration of fn inside the package under analysis.
func funcDeclOf(pass *analysis.Pass, fn *types.Func) *ast.FuncDecl {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && pass.TypesInfo.Defs[fd.Name] == fn {
				return fd
			}
		}
	}
	return nil
}

// isAscendingOrderer verifies that fd is a pure conditional-swap sorting
// network over its parameters — a sequence of `if x > y { x, y = y, x }`
// (or `<` mirrored) statements followed by `return p1, ..., pn` — and that
// simulating it over every permutation of n distinct values yields ascending
// output. For the stripe counts in question n is tiny, so exhaustive
// simulation is exact and instant.
func isAscendingOrderer(fd *ast.FuncDecl) bool {
	if fd.Type.Params == nil || fd.Type.Results == nil || fd.Recv != nil {
		return false
	}
	var params []string
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			params = append(params, name.Name)
		}
	}
	n := len(params)
	if n < 2 || n > 6 || fd.Type.Results.NumFields() == 0 {
		return false
	}
	idx := make(map[string]int, n)
	for i, p := range params {
		idx[p] = i
	}

	// Parse the body into swap steps and the returned variable order.
	type swap struct {
		l, r    int         // compared variables
		op      token.Token // token.GTR or token.LSS
		targets [2]int      // assignment order: targets[0], targets[1] = src[0], src[1]
		sources [2]int
	}
	var steps []swap
	var ret []int
	body := fd.Body.List
	for i, stmt := range body {
		switch s := stmt.(type) {
		case *ast.IfStmt:
			cond, ok := s.Cond.(*ast.BinaryExpr)
			if !ok || (cond.Op != token.GTR && cond.Op != token.LSS) || s.Else != nil || s.Init != nil {
				return false
			}
			l, lok := paramIdx(cond.X, idx)
			r, rok := paramIdx(cond.Y, idx)
			if !lok || !rok {
				return false
			}
			if len(s.Body.List) != 1 {
				return false
			}
			asg, ok := s.Body.List[0].(*ast.AssignStmt)
			if !ok || asg.Tok != token.ASSIGN || len(asg.Lhs) != 2 || len(asg.Rhs) != 2 {
				return false
			}
			var sw swap
			sw.l, sw.r, sw.op = l, r, cond.Op
			for j := 0; j < 2; j++ {
				t, tok := paramIdx(asg.Lhs[j], idx)
				src, sok := paramIdx(asg.Rhs[j], idx)
				if !tok || !sok {
					return false
				}
				sw.targets[j], sw.sources[j] = t, src
			}
			steps = append(steps, sw)
		case *ast.ReturnStmt:
			if i != len(body)-1 {
				return false
			}
			for _, res := range s.Results {
				p, ok := paramIdx(res, idx)
				if !ok {
					return false
				}
				ret = append(ret, p)
			}
		default:
			return false
		}
	}
	if len(ret) == 0 {
		return false
	}

	// Exhaustively simulate every permutation of n distinct values.
	vals := make([]int, n)
	var permute func(depth int, used uint) bool
	run := func() bool {
		env := make([]int, n)
		copy(env, vals)
		for _, sw := range steps {
			take := false
			if sw.op == token.GTR {
				take = env[sw.l] > env[sw.r]
			} else {
				take = env[sw.l] < env[sw.r]
			}
			if take {
				a, b := env[sw.sources[0]], env[sw.sources[1]]
				env[sw.targets[0]], env[sw.targets[1]] = a, b
			}
		}
		prev := -1 << 62
		for _, p := range ret {
			if env[p] < prev {
				return false
			}
			prev = env[p]
		}
		return true
	}
	permute = func(depth int, used uint) bool {
		if depth == n {
			return run()
		}
		for v := 0; v < n; v++ {
			if used&(1<<v) != 0 {
				continue
			}
			vals[depth] = v
			if !permute(depth+1, used|1<<v) {
				return false
			}
		}
		return true
	}
	return permute(0, 0)
}

func paramIdx(e ast.Expr, idx map[string]int) (int, bool) {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return 0, false
	}
	i, ok := idx[id.Name]
	return i, ok
}
