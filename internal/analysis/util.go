package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// PkgPathIs reports whether path is the package named by suffix, matching
// either exactly or on a whole "/"-separated suffix. Analyzers match package
// identity by suffix ("internal/graph") so the same rule works against the
// real module ("nous/internal/graph") and against test fixtures loaded from
// an analyzer's testdata tree.
func PkgPathIs(path, suffix string) bool {
	if path == suffix {
		return true
	}
	return strings.HasSuffix(path, "/"+suffix)
}

// CalleeFunc resolves the *types.Func a call expression invokes, whether the
// callee is a plain identifier, a package-qualified selector or a method
// selection. It returns nil for indirect calls through function values and
// for type conversions.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		// Package-qualified call: graph.PageRank(...).
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// CalleeName returns the bare name of the called function or method, or ""
// when the callee is not a simple identifier or selector.
func CalleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// IsSyncMutex reports whether t is sync.Mutex or sync.RWMutex (possibly via
// a pointer).
func IsSyncMutex(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// FuncPkgPath returns the package path a *types.Func was declared in, or ""
// for builtins.
func FuncPkgPath(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// IsTestFile reports whether the file a position belongs to is a _test.go
// file.
func IsTestFile(name string) bool {
	return strings.HasSuffix(name, "_test.go")
}

// ExprString renders a (small) expression for use in diagnostics and for
// structural comparison of lock bases. It intentionally covers only the
// shapes lock bases take: identifiers, selectors, indexing and unary/star.
func ExprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return ExprString(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return ExprString(e.X) + "[" + ExprString(e.Index) + "]"
	case *ast.StarExpr:
		return "*" + ExprString(e.X)
	case *ast.UnaryExpr:
		return e.Op.String() + ExprString(e.X)
	case *ast.CallExpr:
		return ExprString(e.Fun) + "(…)"
	case *ast.ParenExpr:
		return ExprString(e.X)
	case *ast.BasicLit:
		return e.Value
	}
	return "…"
}

// MentionsIdent reports whether expr mentions an identifier resolving (via
// info.Uses) to obj.
func MentionsIdent(info *types.Info, expr ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}
