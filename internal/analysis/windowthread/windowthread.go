// Package windowthread implements the nouslint rule that keeps time windows
// threaded through the read stack. The windowed read layer (PR 4) works by
// convention: every store read has an unwindowed form M and a windowed form
// MWindow, with M delegating to MWindow(temporal.All()). A function that
// accepts a window but calls the unwindowed form of a callee — or passes a
// fresh temporal.All() where the caller's window should flow — silently
// widens the read to all time. Nothing crashes: "what did X do in 2015" just
// quietly answers from the whole stream, and the (epoch, window) cache keys
// stop meaning what they say.
//
// Inside internal/core, internal/plan and internal/pathsearch, for every
// function that accepts a window — a temporal.Window parameter directly, or
// an Options-style struct parameter carrying a temporal.Window field
// (pathsearch.Options) — the analyzer flags:
//
//   - calls to a callee M when a windowed sibling MWindow exists on the same
//     receiver (or in the same package): the window must be threaded through
//     the windowed form;
//   - window-typed call arguments built from whole cloth — temporal.All(),
//     temporal.Window{} literals — that do not mention any of the function's
//     window parameters: the caller's window is being dropped.
//
// Functions without a window parameter are unconstrained: reads that are
// *supposed* to be unbounded (Diff children evaluate under their own
// windows, trend baselines read all history) simply don't take a window.
// Plan operator nodes also carry windows as fields, but a node parameter is
// plan *data*, not a read view — the executor's ambient window parameter is
// where threading is enforced — so struct parameters only count when they
// are an Options-style bag (type name ending in "Options").
package windowthread

import (
	"go/ast"
	"go/types"
	"strings"

	"nous/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "windowthread",
	Doc: "functions accepting a temporal.Window must thread it through every windowed " +
		"callee (no unwindowed-sibling calls, no fresh temporal.All() args)",
	Run: run,
}

var scopedPkgs = []string{"internal/core", "internal/plan", "internal/pathsearch"}

const temporalPkg = "internal/temporal"

func run(pass *analysis.Pass) (any, error) {
	scoped := false
	for _, p := range scopedPkgs {
		if analysis.PkgPathIs(pass.Pkg.Path(), p) {
			scoped = true
			break
		}
	}
	if !scoped {
		return nil, nil
	}
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset.Position(f.Pos()).Filename) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil, nil
}

// isWindowType reports whether t is temporal.Window.
func isWindowType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Window" && obj.Pkg() != nil && analysis.PkgPathIs(obj.Pkg().Path(), temporalPkg)
}

// carriesWindow reports whether t is temporal.Window or a (pointer to an)
// Options-style struct with a temporal.Window field, like pathsearch.Options.
func carriesWindow(t types.Type) bool {
	if isWindowType(t) {
		return true
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || !strings.HasSuffix(named.Obj().Name(), "Options") {
		return false
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if isWindowType(st.Field(i).Type()) {
			return true
		}
	}
	return false
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	// Collect the window-carrying parameters.
	var winParams []types.Object
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				obj := pass.TypesInfo.Defs[name]
				if obj != nil && carriesWindow(obj.Type()) {
					winParams = append(winParams, obj)
				}
			}
		}
	}
	if len(winParams) == 0 {
		return
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		checkSibling(pass, fd, call)
		for _, arg := range call.Args {
			checkFreshWindowArg(pass, winParams, call, arg)
		}
		return true
	})
}

// checkSibling flags calls to M when a windowed sibling MWindow exists.
func checkSibling(pass *analysis.Pass, fd *ast.FuncDecl, call *ast.CallExpr) {
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn == nil {
		return
	}
	name := fn.Name()
	if strings.HasSuffix(name, "Window") {
		return
	}
	// If the callee already accepts a window, the fresh-arg rule covers it.
	if sig, ok := fn.Type().(*types.Signature); ok {
		for i := 0; i < sig.Params().Len(); i++ {
			if isWindowType(sig.Params().At(i).Type()) {
				return
			}
		}
	}
	sibling := name + "Window"
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		// Method: look for the sibling in the receiver's method set.
		ms := types.NewMethodSet(recv.Type())
		if ms.Lookup(fn.Pkg(), sibling) == nil {
			// Exported siblings are also visible cross-package.
			found := false
			for i := 0; i < ms.Len(); i++ {
				if ms.At(i).Obj().Name() == sibling {
					found = true
					break
				}
			}
			if !found {
				return
			}
		}
	} else {
		// Package function: look for the sibling in the callee's package.
		if fn.Pkg() == nil || fn.Pkg().Scope().Lookup(sibling) == nil {
			return
		}
	}
	pass.Reportf(call.Pos(),
		"%s accepts a time window but calls unwindowed %s (windowed sibling %s exists): the read silently covers all time",
		fd.Name.Name, name, sibling)
}

// checkFreshWindowArg flags window-typed arguments conjured from nothing —
// temporal.All() or a Window literal — that ignore the function's window
// parameters.
func checkFreshWindowArg(pass *analysis.Pass, winParams []types.Object, call *ast.CallExpr, arg ast.Expr) {
	tv, ok := pass.TypesInfo.Types[arg]
	if !ok || !isWindowType(tv.Type) {
		return
	}
	fresh := false
	switch a := ast.Unparen(arg).(type) {
	case *ast.CallExpr:
		if fn := analysis.CalleeFunc(pass.TypesInfo, a); fn != nil &&
			fn.Name() == "All" && analysis.PkgPathIs(analysis.FuncPkgPath(fn), temporalPkg) {
			fresh = true
		}
	case *ast.CompositeLit:
		fresh = true
	}
	if !fresh {
		return
	}
	for _, p := range winParams {
		if analysis.MentionsIdent(pass.TypesInfo, arg, p) {
			return
		}
	}
	pass.Reportf(arg.Pos(),
		"window-accepting function passes a fresh unbounded window to %s instead of threading its own: the caller's window is dropped",
		analysis.ExprString(call.Fun))
}
