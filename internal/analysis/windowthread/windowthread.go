// Package windowthread implements the nouslint rule that keeps time windows
// threaded through the read stack. The windowed read layer (PR 4) works by
// convention: every store read has an unwindowed form M and a windowed form
// MWindow, with M delegating to MWindow(temporal.All()). A function that
// accepts a window but calls the unwindowed form of a callee — or passes a
// fresh temporal.All() where the caller's window should flow — silently
// widens the read to all time. Nothing crashes: "what did X do in 2015" just
// quietly answers from the whole stream, and the (epoch, window) cache keys
// stop meaning what they say.
//
// Inside internal/core, internal/plan and internal/pathsearch, for every
// function that accepts a window — a temporal.Window parameter directly, or
// an Options-style struct parameter carrying a temporal.Window field
// (pathsearch.Options) — the analyzer flags:
//
//   - calls to a callee M when a windowed sibling MWindow exists on the same
//     receiver (or in the same package): the window must be threaded through
//     the windowed form;
//   - window-typed call arguments built from whole cloth — temporal.All(),
//     temporal.Window{} literals — that do not mention any of the function's
//     window parameters: the caller's window is being dropped.
//
// Functions without a window parameter are unconstrained: reads that are
// *supposed* to be unbounded (Diff children evaluate under their own
// windows, trend baselines read all history) simply don't take a window.
// Plan operator nodes also carry windows as fields, but a node parameter is
// plan *data*, not a read view — the executor's ambient window parameter is
// where threading is enforced — so struct parameters only count when they
// are an Options-style bag (type name ending in "Options").
//
// The checks cross package boundaries through two object facts, computed for
// every package the driver feeds the analyzer (not just the scoped ones) and
// shipped through the vetx fact stream:
//
//   - windowedSiblings, exported on every function or method M whose package
//     (or receiver) also declares MWindow. Call sites resolve the sibling
//     question for an imported callee by importing this fact — never by
//     peeking at the callee package's scope — so the check works identically
//     under the one-package-per-process vet driver and degrades loudly (the
//     cross-package fixtures fail) if fact propagation breaks;
//   - dropsWindow, exported on every window-accepting function that
//     internally widens a read (an unwindowed-sibling call or a fresh
//     unbounded window argument). A scoped function that threads its window
//     into an imported dropsWindow callee is flagged at the call site: the
//     window it forwards is dropped somewhere it cannot see.
package windowthread

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"nous/internal/analysis"
)

// WindowedSiblings marks a function or method M whose declaring package (or
// receiver type) also declares a windowed form MWindow.
type WindowedSiblings struct{ Sibling string }

func (*WindowedSiblings) AFact()           {}
func (f *WindowedSiblings) String() string { return "windowedSiblings(" + f.Sibling + ")" }

// DropsWindow marks a window-accepting function that internally drops its
// window: calls an unwindowed sibling or conjures a fresh unbounded window.
type DropsWindow struct{}

func (*DropsWindow) AFact()         {}
func (*DropsWindow) String() string { return "dropsWindow" }

var Analyzer = &analysis.Analyzer{
	Name: "windowthread",
	Doc: "functions accepting a temporal.Window must thread it through every windowed " +
		"callee (no unwindowed-sibling calls, no fresh temporal.All() args, no forwarding " +
		"into imported callees that drop it)",
	FactTypes: []analysis.Fact{(*WindowedSiblings)(nil), (*DropsWindow)(nil)},
	Run:       run,
}

var scopedPkgs = []string{"internal/core", "internal/plan", "internal/pathsearch"}

const temporalPkg = "internal/temporal"

func run(pass *analysis.Pass) (any, error) {
	scoped := false
	for _, p := range scopedPkgs {
		if analysis.PkgPathIs(pass.Pkg.Path(), p) {
			scoped = true
			break
		}
	}
	// Fact phase runs everywhere the driver sends us: sibling pairs and
	// window-droppers in any package are relevant to scoped callers.
	exportSiblingFacts(pass)
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset.Position(f.Pos()).Filename) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if checkFunc(pass, fd, scoped) > 0 {
				if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil {
					if _, ok := analysis.ObjectPath(obj); ok {
						pass.ExportObjectFact(obj, &DropsWindow{})
					}
				}
			}
		}
	}
	return nil, nil
}

// exportSiblingFacts records a windowedSiblings fact on every function or
// method M of this package that has a windowed form MWindow alongside it.
func exportSiblingFacts(pass *analysis.Pass) {
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		switch obj := scope.Lookup(name).(type) {
		case *types.Func:
			if strings.HasSuffix(name, "Window") {
				continue
			}
			if _, ok := scope.Lookup(name + "Window").(*types.Func); ok {
				pass.ExportObjectFact(obj, &WindowedSiblings{Sibling: name + "Window"})
			}
		case *types.TypeName:
			// An alias like `type KG = core.KG` resolves to a foreign
			// named type; its methods are core's to export, not ours.
			if obj.IsAlias() {
				continue
			}
			named, ok := obj.Type().(*types.Named)
			if !ok || named.Obj().Pkg() != pass.Pkg {
				continue
			}
			methods := make(map[string]*types.Func, named.NumMethods())
			for i := 0; i < named.NumMethods(); i++ {
				m := named.Method(i)
				methods[m.Name()] = m
			}
			for mname, m := range methods {
				if strings.HasSuffix(mname, "Window") {
					continue
				}
				if _, ok := methods[mname+"Window"]; ok {
					pass.ExportObjectFact(m, &WindowedSiblings{Sibling: mname + "Window"})
				}
			}
		}
	}
}

// isWindowType reports whether t is temporal.Window.
func isWindowType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Window" && obj.Pkg() != nil && analysis.PkgPathIs(obj.Pkg().Path(), temporalPkg)
}

// carriesWindow reports whether t is temporal.Window or a (pointer to an)
// Options-style struct with a temporal.Window field, like pathsearch.Options.
func carriesWindow(t types.Type) bool {
	if isWindowType(t) {
		return true
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || !strings.HasSuffix(named.Obj().Name(), "Options") {
		return false
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if isWindowType(st.Field(i).Type()) {
			return true
		}
	}
	return false
}

// checkFunc analyzes one window-accepting function and returns the number of
// window-dropping violations found (for the dropsWindow fact). Diagnostics
// are emitted only when report is true — fact computation runs in every
// package, reporting only in the scoped ones.
func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, report bool) int {
	// Collect the window-carrying parameters.
	var winParams []types.Object
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				obj := pass.TypesInfo.Defs[name]
				if obj != nil && carriesWindow(obj.Type()) {
					winParams = append(winParams, obj)
				}
			}
		}
	}
	if len(winParams) == 0 {
		return 0
	}

	violations := 0
	reportf := func(pos token.Pos, format string, args ...any) {
		violations++
		if report {
			pass.Reportf(pos, format, args...)
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		checkSibling(pass, fd, call, reportf)
		for _, arg := range call.Args {
			checkFreshWindowArg(pass, winParams, call, arg, reportf)
		}
		if report {
			checkDropsCallee(pass, fd, winParams, call)
		}
		return true
	})
	return violations
}

// checkDropsCallee flags threading a window into an imported callee marked
// with the dropsWindow fact: the forwarded window is silently widened inside
// a package this pass cannot see. Same-package droppers are flagged at their
// own definition, so only cross-package callees are checked here. These call
// sites do not feed the caller's own dropsWindow fact — the caller threads
// its window correctly; the drop happens in the callee.
func checkDropsCallee(pass *analysis.Pass, fd *ast.FuncDecl, winParams []types.Object, call *ast.CallExpr) {
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg() == pass.Pkg {
		return
	}
	forwards := false
	for _, arg := range call.Args {
		for _, p := range winParams {
			if analysis.MentionsIdent(pass.TypesInfo, arg, p) {
				forwards = true
			}
		}
	}
	if !forwards {
		return
	}
	var drops DropsWindow
	if pass.ImportObjectFact(fn, &drops) {
		pass.Reportf(call.Pos(),
			"%s threads its window into %s.%s, which drops it internally (dropsWindow fact): the read silently covers all time",
			fd.Name.Name, fn.Pkg().Name(), fn.Name())
	}
}

// checkSibling flags calls to M when a windowed sibling MWindow exists. For
// a callee in the package under analysis the sibling is found in the local
// scope or method set; for an imported callee the question is answered
// EXCLUSIVELY by the windowedSiblings fact its own analysis exported —
// keeping the check honest about what modular analysis can see, and making
// the cross-package fixtures fail loudly if fact propagation regresses.
func checkSibling(pass *analysis.Pass, fd *ast.FuncDecl, call *ast.CallExpr, reportf func(token.Pos, string, ...any)) {
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	name := fn.Name()
	if strings.HasSuffix(name, "Window") {
		return
	}
	// If the callee already accepts a window, the fresh-arg rule covers it.
	sig := fn.Type().(*types.Signature)
	for i := 0; i < sig.Params().Len(); i++ {
		if isWindowType(sig.Params().At(i).Type()) {
			return
		}
	}
	sibling := name + "Window"
	if fn.Pkg() != pass.Pkg {
		var ws WindowedSiblings
		if !pass.ImportObjectFact(fn, &ws) {
			return
		}
		sibling = ws.Sibling
	} else if recv := sig.Recv(); recv != nil {
		// Method: look for the sibling in the receiver's method set.
		ms := types.NewMethodSet(recv.Type())
		if ms.Lookup(fn.Pkg(), sibling) == nil {
			found := false
			for i := 0; i < ms.Len(); i++ {
				if ms.At(i).Obj().Name() == sibling {
					found = true
					break
				}
			}
			if !found {
				return
			}
		}
	} else {
		// Package function: look for the sibling in the local scope.
		if fn.Pkg().Scope().Lookup(sibling) == nil {
			return
		}
	}
	reportf(call.Pos(),
		"%s accepts a time window but calls unwindowed %s (windowed sibling %s exists): the read silently covers all time",
		fd.Name.Name, name, sibling)
}

// checkFreshWindowArg flags window-typed arguments conjured from nothing —
// temporal.All() or a Window literal — that ignore the function's window
// parameters.
func checkFreshWindowArg(pass *analysis.Pass, winParams []types.Object, call *ast.CallExpr, arg ast.Expr, reportf func(token.Pos, string, ...any)) {
	tv, ok := pass.TypesInfo.Types[arg]
	if !ok || !isWindowType(tv.Type) {
		return
	}
	fresh := false
	switch a := ast.Unparen(arg).(type) {
	case *ast.CallExpr:
		if fn := analysis.CalleeFunc(pass.TypesInfo, a); fn != nil &&
			fn.Name() == "All" && analysis.PkgPathIs(analysis.FuncPkgPath(fn), temporalPkg) {
			fresh = true
		}
	case *ast.CompositeLit:
		fresh = true
	}
	if !fresh {
		return
	}
	for _, p := range winParams {
		if analysis.MentionsIdent(pass.TypesInfo, arg, p) {
			return
		}
	}
	reportf(arg.Pos(),
		"window-accepting function passes a fresh unbounded window to %s instead of threading its own: the caller's window is dropped",
		analysis.ExprString(call.Fun))
}
