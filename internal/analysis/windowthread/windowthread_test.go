package windowthread_test

import (
	"testing"

	"nous/internal/analysis/analysistest"
	"nous/internal/analysis/windowthread"
)

func TestWindowThread(t *testing.T) {
	analysistest.Run(t, "testdata", windowthread.Analyzer,
		"nous/internal/core", "nous/internal/plan", "nous/internal/pathsearch")
}
