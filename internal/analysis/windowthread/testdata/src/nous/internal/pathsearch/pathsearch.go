// Fixture pathsearch package: the Options-bag form of window carrying, plus
// the plan-node counterexample that must NOT count as a window parameter.
package pathsearch

import "nous/internal/temporal"

type Options struct {
	MaxDepth int
	Window   temporal.Window
}

type Graph struct{}

func (g *Graph) neighbors(name string) []string { return nil }

func (g *Graph) neighborsWindow(name string, w temporal.Window) []string { return nil }

func SearchGood(g *Graph, from string, opt Options) []string {
	return g.neighborsWindow(from, opt.Window)
}

func SearchBadSibling(g *Graph, from string, opt Options) []string {
	return g.neighbors(from) // want `unwindowed neighbors`
}

func SearchBadFresh(g *Graph, from string, opt Options) []string {
	return g.neighborsWindow(from, temporal.All()) // want `fresh unbounded window`
}

// node is operator *data*, not a read view: a struct with a Window field that
// is not an Options bag does not make its holder window-accepting.
type node struct {
	Window temporal.Window
}

func evalNode(g *Graph, n node) []string {
	return g.neighborsWindow("x", temporal.All())
}
