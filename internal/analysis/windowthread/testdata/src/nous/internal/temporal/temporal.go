// Fixture temporal package: the window type the rule tracks.
package temporal

type Window struct {
	Since int64
	Until int64
}

func All() Window { return Window{} }
