// Fixture consumer package for the cross-package fact tests: every callee
// here lives in nous/internal/core, so the sibling and dropper checks can
// only fire through the windowedSiblings / dropsWindow facts exported while
// core was analyzed. Remove either fact export from the analyzer and the
// matching expectations below fail.
package plan

import (
	"nous/internal/core"
	"nous/internal/temporal"
)

func execGood(k *core.KG, w temporal.Window) int {
	return len(k.FactsAboutWindow("x", w)) + core.ExportWindow(k, w)
}

func execBadSibling(k *core.KG, w temporal.Window) int {
	return len(k.FactsAbout("x")) // want `unwindowed FactsAbout \(windowed sibling FactsAboutWindow exists\)`
}

func execBadExport(k *core.KG, w temporal.Window) int {
	return core.Export(k) // want `unwindowed Export \(windowed sibling ExportWindow exists\)`
}

func execBadDropper(k *core.KG, w temporal.Window) int {
	return core.LeakyCount(k, w) // want `threads its window into core\.LeakyCount, which drops it internally`
}
