// Fixture core package: the M / MWindow delegation convention with threaded
// (good) and dropped (flagged) windows.
package core

import "nous/internal/temporal"

type Fact struct{}

type KG struct{}

// FactsAbout has no window parameter, so its temporal.All() delegation is the
// convention, not a violation.
func (k *KG) FactsAbout(name string) []Fact {
	return k.FactsAboutWindow(name, temporal.All())
}

func (k *KG) FactsAboutWindow(name string, w temporal.Window) []Fact { return nil }

func (k *KG) goodThreaded(name string, w temporal.Window) int {
	return len(k.FactsAboutWindow(name, w))
}

func (k *KG) goodDerived(name string, w temporal.Window) int {
	ww := w
	return len(k.FactsAboutWindow(name, ww))
}

func (k *KG) goodRebuilt(name string, w temporal.Window) int {
	return len(k.FactsAboutWindow(name, temporal.Window{Since: w.Since, Until: w.Until}))
}

func (k *KG) badSibling(name string, w temporal.Window) int {
	return len(k.FactsAbout(name)) // want `unwindowed FactsAbout`
}

func (k *KG) badFreshAll(name string, w temporal.Window) int {
	return len(k.FactsAboutWindow(name, temporal.All())) // want `fresh unbounded window`
}

func (k *KG) badFreshLiteral(name string, w temporal.Window) int {
	return len(k.FactsAboutWindow(name, temporal.Window{Since: 0, Until: 1 << 62})) // want `fresh unbounded window`
}

func (k *KG) allowedTrendBaseline(name string, w temporal.Window) int {
	//nouslint:allow windowthread -- trend baseline deliberately reads all history
	return len(k.FactsAboutWindow(name, temporal.All()))
}

// Package-scope sibling pair.
func Export(k *KG) int { return ExportWindow(k, temporal.All()) }

func ExportWindow(k *KG, w temporal.Window) int { return 0 }

func badExport(k *KG, w temporal.Window) int {
	return Export(k) // want `unwindowed Export`
}

// LeakyCount accepts a window and drops it: exported so the plan fixture can
// prove the dropsWindow fact crosses the package boundary.
func LeakyCount(k *KG, w temporal.Window) int {
	return len(k.FactsAboutWindow("x", temporal.All())) // want `fresh unbounded window`
}

// wantfact KG.FactsAbout:"windowedSiblings\(FactsAboutWindow\)"
// wantfact Export:"windowedSiblings\(ExportWindow\)"
// wantfact LeakyCount:"dropsWindow"
