// Fixture modeled on internal/graph/pregel.go's countKeptOutEdges and
// gatherContributions: the real PageRank hot path reads fields out of the
// view into local accumulators and must stay clean.
package analytics

import "nous/internal/graph"

func countKeptOutEdges(g *graph.Graph, keep func(*graph.EdgeScan) bool) map[graph.VertexID]float64 {
	outdeg := make(map[graph.VertexID]float64)
	g.ScanEdges(func(e *graph.EdgeScan) bool {
		if keep == nil || keep(e) {
			outdeg[e.Src]++
		}
		return true
	})
	return outdeg
}

func gatherContributions(g *graph.Graph, ranks, outdeg map[graph.VertexID]float64) map[graph.VertexID]float64 {
	contrib := make(map[graph.VertexID]float64, len(ranks))
	g.ScanEdges(func(e *graph.EdgeScan) bool {
		if d := outdeg[e.Src]; d > 0 {
			contrib[e.Dst] += ranks[e.Src] / d
		}
		return true
	})
	return contrib
}

// materialized uses the sanctioned escape hatch: an owned copy may go
// anywhere.
func materialized(g *graph.Graph) []graph.Edge {
	var out []graph.Edge
	g.ScanEdges(func(e *graph.EdgeScan) bool {
		out = append(out, e.Materialize())
		return true
	})
	return out
}
