// Fixture exercising every escape mode the rule flags, one per function.
package badscan

import "nous/internal/graph"

var global *graph.EdgeScan

var lastCopy graph.EdgeScan

type holder struct{ last *graph.EdgeScan }

type wrap struct{ view *graph.EdgeScan }

func fieldStore(g *graph.Graph, h *holder) {
	g.ScanEdges(func(e *graph.EdgeScan) bool {
		h.last = e // want `stored in h\.last`
		return true
	})
}

func globalStore(g *graph.Graph) {
	g.ScanEdges(func(e *graph.EdgeScan) bool {
		global = e // want `assigned to package-level variable global`
		return true
	})
}

func derefCopyStore(g *graph.Graph) {
	g.ScanEdges(func(e *graph.EdgeScan) bool {
		lastCopy = *e // want `assigned to package-level variable lastCopy`
		return true
	})
}

func capturedStore(g *graph.Graph) *graph.EdgeScan {
	var out *graph.EdgeScan
	g.ScanEdges(func(e *graph.EdgeScan) bool {
		out = e // want `captured from outside the callback`
		return false
	})
	return out
}

func aliasLaundering(g *graph.Graph) {
	g.ScanEdges(func(e *graph.EdgeScan) bool {
		alias := e
		global = alias // want `assigned to package-level variable global`
		return true
	})
}

func channelSend(g *graph.Graph, ch chan *graph.EdgeScan) {
	g.ScanEdges(func(e *graph.EdgeScan) bool {
		ch <- e // want `sent on a channel`
		return true
	})
}

func sliceAppend(g *graph.Graph) {
	var views []*graph.EdgeScan
	g.ScanEdges(func(e *graph.EdgeScan) bool {
		views = append(views, e) // want `appended to a slice`
		return true
	})
	_ = views
}

func mapStore(g *graph.Graph, byID map[graph.EdgeID]*graph.EdgeScan) {
	g.ScanEdges(func(e *graph.EdgeScan) bool {
		byID[e.ID] = e // want `stored into element`
		return true
	})
}

func goroutineCapture(g *graph.Graph) {
	g.ScanEdges(func(e *graph.EdgeScan) bool {
		go func() { _ = e.ID }() // want `captured by a goroutine`
		return true
	})
}

func closureCapture(g *graph.Graph) func() graph.EdgeID {
	var f func() graph.EdgeID
	g.ScanEdges(func(e *graph.EdgeScan) bool {
		f = func() graph.EdgeID { return e.ID } // want `captured by a closure`
		return false
	})
	return f
}

func compositeCapture(g *graph.Graph) {
	g.ScanEdges(func(e *graph.EdgeScan) bool {
		w := wrap{view: e} // want `stored in a composite literal`
		_ = w
		return true
	})
}

// Identity returns its parameter: not flagged here (it never sees a live
// view by itself) but marked with the retainsScanArg fact, so callbacks
// feeding it views are flagged at the call site.
func Identity(e *graph.EdgeScan) *graph.EdgeScan { return e }

// wantfact Identity:"retainsScanArg"

func returnViaHelper(g *graph.Graph) {
	g.ScanEdges(func(e *graph.EdgeScan) bool {
		global = Identity(e) // want `passed to Identity, which retains`
		return true
	})
}

// Safe patterns that must stay clean: field reads, discards, local aliases
// that never leave, immediately-invoked and deferred closures.
func cleanPatterns(g *graph.Graph) int64 {
	var sum int64
	g.ScanEdges(func(e *graph.EdgeScan) bool {
		_ = e
		alias := e
		sum += alias.Timestamp
		func() { sum += e.Timestamp }()
		defer func() { _ = e.ID }()
		return true
	})
	return sum
}

// Suppression still works, reason mandatory.
func waived(g *graph.Graph) {
	g.ScanEdges(func(e *graph.EdgeScan) bool {
		//nouslint:allow scanescape -- test fixture proving suppression applies
		global = e
		return true
	})
}
