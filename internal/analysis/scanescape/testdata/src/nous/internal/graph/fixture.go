// Fixture graph package: the EdgeScan view type and the scan API shape the
// rule guards. Materialize is the sanctioned escape hatch.
package graph

type VertexID uint64

type EdgeID uint64

// EdgeScan models the zero-copy slab view: reused per iteration, valid only
// inside the callback.
type EdgeScan struct {
	ID        EdgeID
	Src, Dst  VertexID
	Weight    float64
	Timestamp int64
}

// Edge is the owned, materialized form.
type Edge struct {
	ID        EdgeID
	Src, Dst  VertexID
	Weight    float64
	Timestamp int64
}

// Materialize copies the view into an owned Edge.
func (e *EdgeScan) Materialize() Edge {
	return Edge{ID: e.ID, Src: e.Src, Dst: e.Dst, Weight: e.Weight, Timestamp: e.Timestamp}
}

type Graph struct{}

func (g *Graph) ForEachOutScan(id VertexID, fn func(*EdgeScan) bool)      {}
func (g *Graph) ForEachIncidentScan(id VertexID, fn func(*EdgeScan) bool) {}
func (g *Graph) ScanEdges(fn func(*EdgeScan) bool)                        {}
