// Fixture dependency package for the cross-package fact test: Keep and
// Chain retain their *graph.EdgeScan parameter and must be marked with the
// retainsScanArg fact; Inspect reads fields only and must not be.
package stash

import "nous/internal/graph"

var last *graph.EdgeScan

// Keep stashes the view in a package-level variable.
func Keep(e *graph.EdgeScan) { last = e }

// wantfact Keep:"retainsScanArg"

// Chain forwards its view to Keep: transitively a retainer, found by the
// in-package fixpoint.
func Chain(e *graph.EdgeScan) { Keep(e) }

// wantfact Chain:"retainsScanArg"

// Inspect only reads scalar fields; handing it a view is safe.
func Inspect(e *graph.EdgeScan) int64 { return e.Timestamp }
