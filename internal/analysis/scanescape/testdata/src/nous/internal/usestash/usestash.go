// Fixture consumer package for the cross-package fact test: the callbacks
// here look locally harmless — they just call functions from another
// package — and the violations are caught ONLY because stash's analysis
// exported retainsScanArg facts that this pass imports. Remove the fact
// export from the analyzer and every expectation below fails.
package usestash

import (
	"nous/internal/graph"
	"nous/internal/stash"
)

func scanAll(g *graph.Graph) {
	g.ScanEdges(func(e *graph.EdgeScan) bool {
		_ = stash.Inspect(e)
		stash.Keep(e)  // want `passed to Keep, which retains its \*graph\.EdgeScan argument`
		stash.Chain(e) // want `passed to Chain, which retains`
		return true
	})
}
