// Fixture modeled on internal/pathsearch's beam expansion: copying scalar
// fields into a compact per-hop record and appending THAT is the intended
// zero-copy pattern and must stay clean.
package pathsearch

import "nous/internal/graph"

type pathEdge struct {
	id       graph.EdgeID
	src, dst graph.VertexID
}

func expand(g *graph.Graph, from graph.VertexID) []pathEdge {
	var edgeBuf []pathEdge
	g.ForEachIncidentScan(from, func(e *graph.EdgeScan) bool {
		edgeBuf = append(edgeBuf, pathEdge{id: e.ID, src: e.Src, dst: e.Dst})
		return true
	})
	return edgeBuf
}

// filtered shows a field-reading predicate call: passing the view to a
// callee that does not retain it is fine.
func filtered(g *graph.Graph, from graph.VertexID, minTS int64) int {
	n := 0
	g.ForEachOutScan(from, func(e *graph.EdgeScan) bool {
		if inWindow(e, minTS) {
			n++
		}
		return true
	})
	return n
}

func inWindow(e *graph.EdgeScan, minTS int64) bool { return e.Timestamp >= minTS }
