// Package scanescape implements the nouslint rule that makes the zero-copy
// EdgeScan contract machine-checked. internal/graph's scan API (PR 7) hands
// callbacks a *graph.EdgeScan that is a stack-reused projection of the
// columnar slab: ForEachOutScan and friends fill ONE view per iteration and
// pass its address, so the moment the callback returns — in fact the moment
// the next edge is visited — the view's fields describe a different edge and
// its props pointer aliases storage the graph still owns. The scan.go doc
// comment says "valid only inside the callback"; nothing enforced it.
//
// The rule: a *graph.EdgeScan received as a parameter (by a scan callback
// literal, or by any named function) must not outlive the call. Flagged
// escapes:
//
//   - assignment to a package-level variable, a variable captured from an
//     enclosing function, a struct field, a map/slice element, or through a
//     pointer;
//   - appending it to any slice;
//   - sending it on a channel;
//   - returning it;
//   - capture by a goroutine or by a closure that may outlive the call
//     (immediately-invoked and deferred literals are exempt: they run before
//     the call returns);
//   - placing it in a composite literal;
//   - passing it to a function that is itself known to retain its
//     *graph.EdgeScan parameter.
//
// e.Materialize() is the sanctioned escape hatch: it copies the view into an
// owned Edge value, and calls to it are never flagged.
//
// The last bullet is where cross-package facts come in. A named function (or
// method) whose *graph.EdgeScan parameter escapes is not flagged at its
// definition — handed an owned view it would be harmless — but it is marked
// with the retainsScanArg object fact, computed to a fixpoint within the
// package (a function that forwards its view to a retainer is itself a
// retainer) and exported through the vetx fact stream. Every call site that
// feeds a live scan view to a fact-marked function is then flagged, even
// when the retaining function lives in a package compiled long before this
// one was analyzed.
package scanescape

import (
	"go/ast"
	"go/token"
	"go/types"

	"nous/internal/analysis"
)

// RetainsScanArg marks a function that stores, returns, or otherwise lets a
// *graph.EdgeScan parameter outlive the call (directly or by forwarding it
// to another retainer).
type RetainsScanArg struct{}

func (*RetainsScanArg) AFact()         {}
func (*RetainsScanArg) String() string { return "retainsScanArg" }

var Analyzer = &analysis.Analyzer{
	Name: "scanescape",
	Doc: "a *graph.EdgeScan view is valid only inside its scan callback: it must not be " +
		"stored, sent, appended, returned, captured, or passed to a retainsScanArg function " +
		"(Materialize() is the escape hatch)",
	FactTypes: []analysis.Fact{(*RetainsScanArg)(nil)},
	Run:       run,
}

const graphPkg = "internal/graph"

// isEdgeScanPtr reports whether t is *graph.EdgeScan.
func isEdgeScanPtr(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := p.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "EdgeScan" && obj.Pkg() != nil && analysis.PkgPathIs(obj.Pkg().Path(), graphPkg)
}

func run(pass *analysis.Pass) (any, error) {
	var files []*ast.File
	for _, f := range pass.Files {
		if !analysis.IsTestFile(pass.Fset.Position(f.Pos()).Filename) {
			files = append(files, f)
		}
	}

	// Phase 1: mark named functions whose view parameter escapes with the
	// retainsScanArg fact, iterating to a fixpoint so forwarding chains
	// (A passes its view to B, B stores it) are marked whatever order the
	// declarations appear in.
	type declInfo struct {
		fd     *ast.FuncDecl
		obj    types.Object
		params map[types.Object]bool
		marked bool
	}
	var decls []*declInfo
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			params := scanParams(pass, fd.Type)
			if len(params) == 0 {
				continue
			}
			obj := pass.TypesInfo.Defs[fd.Name]
			if obj == nil {
				continue
			}
			decls = append(decls, &declInfo{fd: fd, obj: obj, params: params})
		}
	}
	for changed := true; changed; {
		changed = false
		for _, d := range decls {
			if d.marked {
				continue
			}
			if len(findEscapes(pass, d.fd.Body, d.params)) > 0 {
				pass.ExportObjectFact(d.obj, &RetainsScanArg{})
				d.marked = true
				changed = true
			}
		}
	}

	// Phase 2: diagnose scan callbacks — every function literal with a
	// *graph.EdgeScan parameter. Named functions are covered by the fact
	// (their callers are flagged); literals ARE the call sites where a
	// live view exists, so escapes here are violations.
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.FuncLit)
			if !ok {
				return true
			}
			params := scanParams(pass, lit.Type)
			if len(params) == 0 {
				return true
			}
			for _, esc := range findEscapes(pass, lit.Body, params) {
				pass.Reportf(esc.pos, "scan view escapes its callback: %s (copy fields out or use Materialize())", esc.how)
			}
			return true
		})
	}
	return nil, nil
}

// scanParams collects the declared *graph.EdgeScan parameters of a function
// type.
func scanParams(pass *analysis.Pass, ft *ast.FuncType) map[types.Object]bool {
	params := make(map[types.Object]bool)
	if ft.Params == nil {
		return params
	}
	for _, field := range ft.Params.List {
		for _, name := range field.Names {
			if obj := pass.TypesInfo.Defs[name]; obj != nil && isEdgeScanPtr(obj.Type()) {
				params[obj] = true
			}
		}
	}
	return params
}

// escape is one way a tracked view outlives its call.
type escape struct {
	pos token.Pos
	how string
}

// findEscapes analyzes one function body whose tracked parameters hold live
// scan views and returns every way a view (or a local alias of one) escapes.
func findEscapes(pass *analysis.Pass, body *ast.BlockStmt, params map[types.Object]bool) []escape {
	info := pass.TypesInfo

	// Local aliases: x := e (or x = e for an x declared in this body)
	// makes x carry the view. Iterate to a fixpoint so chains resolve.
	tracked := make(map[types.Object]bool, len(params))
	for p := range params {
		tracked[p] = true
	}
	declaredInside := func(obj types.Object) bool {
		return obj != nil && obj.Pos() >= body.Pos() && obj.Pos() <= body.End()
	}
	trackedIdent := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && tracked[info.Uses[id]]
	}
	// trackedValue matches the view pointer itself and *e deref copies —
	// a copied EdgeScan still aliases slab-owned property storage, so
	// storing one is the same contract violation with extra steps.
	trackedValue := func(e ast.Expr) bool {
		e = ast.Unparen(e)
		if trackedIdent(e) {
			return true
		}
		star, ok := e.(*ast.StarExpr)
		return ok && trackedIdent(star.X)
	}
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, rhs := range as.Rhs {
				if !trackedIdent(rhs) {
					continue
				}
				id, ok := as.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				obj := info.Defs[id]
				if obj == nil {
					obj = info.Uses[id]
				}
				if declaredInside(obj) && !tracked[obj] {
					tracked[obj] = true
					changed = true
				}
			}
			return true
		})
	}

	// Classify closures up front: immediately-invoked (and deferred)
	// literals run before the enclosing call returns, so capture by them
	// is not an escape; goroutine bodies are reported at the go statement.
	iife := make(map[*ast.FuncLit]bool)
	goLit := make(map[*ast.FuncLit]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if lit, ok := ast.Unparen(n.Fun).(*ast.FuncLit); ok {
				iife[lit] = true
			}
		case *ast.GoStmt:
			if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
				goLit[lit] = true
				delete(iife, lit)
			}
		}
		return true
	})

	mentionsTracked := func(n ast.Node) bool {
		found := false
		ast.Inspect(n, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok && tracked[info.Uses[id]] {
				found = true
			}
			return !found
		})
		return found
	}

	var escapes []escape
	report := func(pos token.Pos, how string) { escapes = append(escapes, escape{pos: pos, how: how}) }
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if iife[n] {
				return true // runs inline; keep checking its body
			}
			if goLit[n] {
				return false // reported at the go statement
			}
			if mentionsTracked(n) {
				report(n.Pos(), "captured by a closure that may outlive the callback")
			}
			return false
		case *ast.GoStmt:
			if mentionsTracked(n.Call) {
				report(n.Pos(), "captured by a goroutine")
			}
			return false
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, rhs := range n.Rhs {
				if !trackedValue(rhs) {
					continue
				}
				switch lhs := ast.Unparen(n.Lhs[i]).(type) {
				case *ast.Ident:
					if lhs.Name == "_" {
						continue // discard, not a store
					}
					obj := info.Defs[lhs]
					if obj == nil {
						obj = info.Uses[lhs]
					}
					if declaredInside(obj) {
						continue // local alias, tracked above
					}
					if obj != nil && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
						report(rhs.Pos(), "assigned to package-level variable "+lhs.Name)
					} else {
						report(rhs.Pos(), "assigned to variable "+lhs.Name+" captured from outside the callback")
					}
				case *ast.SelectorExpr:
					report(rhs.Pos(), "stored in "+analysis.ExprString(lhs))
				case *ast.IndexExpr:
					report(rhs.Pos(), "stored into element "+analysis.ExprString(lhs))
				case *ast.StarExpr:
					report(rhs.Pos(), "stored through pointer "+analysis.ExprString(lhs))
				}
			}
		case *ast.SendStmt:
			if trackedValue(n.Value) {
				report(n.Value.Pos(), "sent on a channel")
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if trackedValue(res) {
					report(res.Pos(), "returned from the function")
				}
			}
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				v := elt
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				if trackedValue(v) {
					report(v.Pos(), "stored in a composite literal")
				}
			}
		case *ast.CallExpr:
			if name, ok := builtinName(info, n); ok {
				if name == "append" {
					for _, arg := range n.Args[1:] {
						if trackedValue(arg) {
							report(arg.Pos(), "appended to a slice")
						}
					}
				}
				return true
			}
			fn := analysis.CalleeFunc(info, n)
			if fn == nil {
				return true
			}
			var retains RetainsScanArg
			if pass.ImportObjectFact(fn, &retains) {
				for _, arg := range n.Args {
					if trackedValue(arg) {
						report(arg.Pos(), "passed to "+fn.Name()+", which retains its *graph.EdgeScan argument")
					}
				}
			}
		}
		return true
	})
	return escapes
}

// builtinName reports whether a call invokes a builtin, and which.
func builtinName(info *types.Info, call *ast.CallExpr) (string, bool) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return "", false
	}
	if b, ok := info.Uses[id].(*types.Builtin); ok {
		return b.Name(), true
	}
	return "", false
}
