package scanescape_test

import (
	"testing"

	"nous/internal/analysis/analysistest"
	"nous/internal/analysis/scanescape"
)

func TestScanEscape(t *testing.T) {
	analysistest.Run(t, "testdata", scanescape.Analyzer,
		"nous/internal/analytics",
		"nous/internal/pathsearch",
		"nous/internal/badscan",
		"nous/internal/stash",
		"nous/internal/usestash",
	)
}
