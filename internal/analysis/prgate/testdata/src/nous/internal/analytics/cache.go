// Fixture analytics package: the one place allowed to recompute PageRank.
package analytics

import "nous/internal/graph"

type Cache struct {
	g *graph.Graph
}

func (c *Cache) Recompute() map[string]float64 {
	return c.g.PageRank(0.85, 20) // allowed: this is the memoization point
}
