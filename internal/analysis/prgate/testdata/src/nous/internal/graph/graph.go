// Fixture graph package exposing the gated PageRank entry points.
package graph

type Graph struct{}

func (g *Graph) PageRank(damping float64, iters int) map[string]float64 { return nil }

func (g *Graph) PageRankFiltered(damping float64, iters int, keep func(string) bool) map[string]float64 {
	return nil
}

func (g *Graph) Degree(name string) int { return 0 }
