// Fixture query package: PageRank calls here bypass the epoch-memoized cache.
package qa

import "nous/internal/graph"

func rank(g *graph.Graph) map[string]float64 {
	return g.PageRank(0.85, 20) // want `outside internal/analytics`
}

func filtered(g *graph.Graph, keep func(string) bool) map[string]float64 {
	return g.PageRankFiltered(0.85, 20, keep) // want `outside internal/analytics`
}

func degree(g *graph.Graph) int {
	return g.Degree("ada") // ungated graph reads are fine
}

// PageRank with the same name in another package is not the gated one.
func PageRank() int { return 0 }

func localRank() int {
	return PageRank()
}

func batch(g *graph.Graph) map[string]float64 {
	//nouslint:allow prgate -- offline batch export, not on the query path
	return g.PageRank(0.85, 20)
}
