// Package prgate implements the nouslint rule keeping PageRank off the query
// path: internal/analytics memoizes PageRank per mutation epoch (with
// singleflight and a staleness budget), and that cache is only effective if
// it is the single recompute point. A stray graph.PageRank call from a query
// package silently reintroduces the seed's recompute-per-request behaviour —
// the ~100× regression PR 2 removed — without failing any test.
package prgate

import (
	"go/ast"

	"nous/internal/analysis"
)

// graphPkg is the package (matched by path suffix) whose PageRank entry
// points are gated, and allowedPkgs are the packages permitted to call them.
const graphPkg = "internal/graph"

var gatedFuncs = map[string]bool{"PageRank": true, "PageRankFiltered": true}

var allowedPkgs = []string{
	"internal/analytics", // the epoch-memoized cache: the single recompute point
	"internal/graph",     // the implementation itself
}

var Analyzer = &analysis.Analyzer{
	Name: "prgate",
	Doc: "graph.PageRank/PageRankFiltered may only be called from internal/analytics " +
		"(and tests); everything else must go through the epoch-memoized analytics.Cache",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, allowed := range allowedPkgs {
		if analysis.PkgPathIs(pass.Pkg.Path(), allowed) {
			return nil, nil
		}
	}
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset.Position(f.Pos()).Filename) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := analysis.CalleeFunc(pass.TypesInfo, call)
			if fn == nil || !gatedFuncs[fn.Name()] {
				return true
			}
			if !analysis.PkgPathIs(analysis.FuncPkgPath(fn), graphPkg) {
				return true
			}
			pass.Reportf(call.Pos(),
				"call to graph.%s outside internal/analytics: query paths must use the epoch-memoized analytics.Cache",
				fn.Name())
			return true
		})
	}
	return nil, nil
}
