package prgate_test

import (
	"testing"

	"nous/internal/analysis/analysistest"
	"nous/internal/analysis/prgate"
)

func TestPRGate(t *testing.T) {
	analysistest.Run(t, "testdata", prgate.Analyzer,
		"nous/internal/qa", "nous/internal/analytics")
}
