// Package analysis is a minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis API surface that nouslint's analyzers
// program against. The container this repo builds in has no module proxy
// access and the module is deliberately stdlib-only, so instead of vendoring
// x/tools we keep the analyzers written to the upstream shape (Analyzer,
// Pass, Diagnostic) and supply the ~150 lines of harness they need. If the
// module ever grows a real x/tools dependency, each analyzer ports by
// changing one import line.
//
// On top of the upstream shape this package adds the //nouslint:allow
// suppression protocol shared by every analyzer:
//
//	//nouslint:allow <rule> -- <reason>
//
// placed on the flagged line or the line immediately above suppresses a
// diagnostic from analyzer <rule>. The reason is mandatory: an allow without
// one is itself reported. Suppressions are counted per Pass so drivers can
// surface how many findings are being waived.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
	"regexp"
	"sort"
	"strings"
)

// Analyzer describes one nouslint rule: a name (also the rule token accepted
// by //nouslint:allow), documentation, the function that runs it, and the
// fact types it exchanges across package boundaries.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) (any, error)

	// FactTypes declares the fact types this analyzer may export or
	// import, each as a pointer to the zero struct. Exporting an
	// undeclared fact type panics; declared types are gob-registered by
	// RegisterFactTypes and folded into the vetx schema fingerprint.
	FactTypes []Fact
}

// Diagnostic is one finding, positioned inside Pass.Fset.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic. It is pre-wired by NewPass to apply
	// //nouslint:allow suppression before forwarding to the sink.
	Report func(Diagnostic)

	// Suppressed counts diagnostics waived by a well-formed allow
	// directive during this pass.
	Suppressed int

	allows    map[string][]*allowDirective // file name -> directives
	sink      func(Diagnostic)
	facts     *FactStore
	pkgByPath map[string]*types.Package // lazy transitive-import index
}

// lookupPkg resolves a package path to a *types.Package visible from this
// pass: the pass's own package or anything in its transitive imports.
func (p *Pass) lookupPkg(path string) *types.Package {
	if p.pkgByPath == nil {
		p.pkgByPath = make(map[string]*types.Package)
		var walk func(pkg *types.Package)
		walk = func(pkg *types.Package) {
			if pkg == nil || p.pkgByPath[pkg.Path()] != nil {
				return
			}
			p.pkgByPath[pkg.Path()] = pkg
			for _, imp := range pkg.Imports() {
				walk(imp)
			}
		}
		walk(p.Pkg)
	}
	return p.pkgByPath[path]
}

// checkFactType panics unless the analyzer declared fact's type in FactTypes.
// Facts are part of an analyzer's wire schema; an undeclared type would be
// silently dropped by serialization, so using one is a programming error.
func (p *Pass) checkFactType(fact Fact) {
	if err := validFact(fact); err != nil {
		panic(fmt.Sprintf("%s: %v", p.Analyzer.Name, err))
	}
	for _, f := range p.Analyzer.FactTypes {
		if reflect.TypeOf(f) == reflect.TypeOf(fact) {
			return
		}
	}
	panic(fmt.Sprintf("%s: fact type %T not declared in FactTypes", p.Analyzer.Name, fact))
}

// ExportObjectFact records fact about obj, which must be a package-level
// object (or method of a package-level type) of the package under analysis.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	p.checkFactType(fact)
	if obj == nil || obj.Pkg() != p.Pkg {
		panic(fmt.Sprintf("%s: ExportObjectFact: object %v is not from package %v", p.Analyzer.Name, obj, p.Pkg))
	}
	path, ok := ObjectPath(obj)
	if !ok {
		panic(fmt.Sprintf("%s: ExportObjectFact: no object path for %v (facts attach to package-level objects and methods only)", p.Analyzer.Name, obj))
	}
	p.facts.put(p.Analyzer.Name, p.Pkg.Path(), path, fact)
}

// ImportObjectFact copies into fact the fact of fact's type previously
// exported about obj — by this pass, an earlier pass in the same run, or a
// dependency's vetx file — and reports whether one existed.
func (p *Pass) ImportObjectFact(obj types.Object, fact Fact) bool {
	p.checkFactType(fact)
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	path, ok := ObjectPath(obj)
	if !ok {
		return false
	}
	return p.facts.get(p.Analyzer.Name, obj.Pkg().Path(), path, fact)
}

// ExportPackageFact records fact about the package under analysis.
func (p *Pass) ExportPackageFact(fact Fact) {
	p.checkFactType(fact)
	p.facts.put(p.Analyzer.Name, p.Pkg.Path(), "", fact)
}

// ImportPackageFact copies into fact the package fact of fact's type
// recorded about pkg, reporting whether one existed.
func (p *Pass) ImportPackageFact(pkg *types.Package, fact Fact) bool {
	p.checkFactType(fact)
	if pkg == nil {
		return false
	}
	return p.facts.get(p.Analyzer.Name, pkg.Path(), "", fact)
}

// AllObjectFacts returns every object fact visible to this analyzer, sorted
// by (package, object, fact type). Object is resolved where the current
// pass's import graph can see the package.
func (p *Pass) AllObjectFacts() []ObjectFact {
	var out []ObjectFact
	p.facts.mu.RLock()
	defer p.facts.mu.RUnlock()
	for k, f := range p.facts.facts {
		if k.analyzer != p.Analyzer.Name || k.obj == "" {
			continue
		}
		out = append(out, ObjectFact{
			PkgPath: k.pkg,
			ObjPath: k.obj,
			Object:  resolveObject(p.lookupPkg(k.pkg), k.obj),
			Fact:    f,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.PkgPath != b.PkgPath {
			return a.PkgPath < b.PkgPath
		}
		if a.ObjPath != b.ObjPath {
			return a.ObjPath < b.ObjPath
		}
		return gobName(a.Fact) < gobName(b.Fact)
	})
	return out
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// allowDirective is one parsed //nouslint:allow comment.
type allowDirective struct {
	line   int // line the directive suppresses (the comment line; also covers line+1)
	ownLn  int // line the comment itself sits on, for error reporting
	pos    token.Pos
	rules  []string
	reason string
}

var allowRe = regexp.MustCompile(`^//nouslint:allow\s+([a-z, ]+?)\s*(?:--\s*(.*))?$`)

// NewPass builds a Pass for one package, scanning its files for
// //nouslint:allow directives and wiring Report through the suppression
// filter into sink. A directive naming the pass's analyzer with an empty
// reason is reported immediately as malformed. Facts are exchanged through
// store; a nil store gives the pass a private, empty one (facts then flow
// within the pass but go nowhere).
func NewPass(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, sink func(Diagnostic), store *FactStore) *Pass {
	if store == nil {
		store = NewFactStore()
	}
	p := &Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
		allows:    make(map[string][]*allowDirective),
		sink:      sink,
		facts:     store,
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				if !strings.HasPrefix(text, "//nouslint:") {
					continue
				}
				m := allowRe.FindStringSubmatch(text)
				pos := fset.Position(c.Pos())
				if m == nil {
					sink(Diagnostic{Pos: c.Pos(), Message: "malformed nouslint directive (want //nouslint:allow <rule> -- <reason>)"})
					continue
				}
				d := &allowDirective{line: pos.Line, ownLn: pos.Line, pos: c.Pos(), reason: strings.TrimSpace(m[2])}
				for _, r := range strings.FieldsFunc(m[1], func(r rune) bool { return r == ',' || r == ' ' }) {
					if r != "" {
						d.rules = append(d.rules, r)
					}
				}
				if d.matches(a.Name) && d.reason == "" {
					sink(Diagnostic{Pos: c.Pos(), Message: fmt.Sprintf("//nouslint:allow %s needs a reason (append `-- <why>`)", a.Name)})
					continue
				}
				p.allows[pos.Filename] = append(p.allows[pos.Filename], d)
			}
		}
	}
	p.Report = func(d Diagnostic) {
		if p.suppress(d) {
			p.Suppressed++
			return
		}
		p.sink(d)
	}
	return p
}

func (d *allowDirective) matches(rule string) bool {
	for _, r := range d.rules {
		if r == rule || r == "all" {
			return true
		}
	}
	return false
}

// suppress reports whether a well-formed allow directive for this analyzer
// covers the diagnostic: the directive sits on the same line (trailing
// comment) or on the line immediately above.
func (p *Pass) suppress(d Diagnostic) bool {
	pos := p.Fset.Position(d.Pos)
	for _, a := range p.allows[pos.Filename] {
		if !a.matches(p.Analyzer.Name) || a.reason == "" {
			continue
		}
		if a.line == pos.Line || a.line == pos.Line-1 {
			return true
		}
	}
	return false
}

// Run executes one analyzer over one package with a private fact store and
// returns the surviving diagnostics plus the count of allow-suppressed ones.
func Run(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) (diags []Diagnostic, suppressed int, err error) {
	return RunFacts(a, fset, files, pkg, info, nil)
}

// RunFacts is Run against a caller-owned fact store: facts imported by the
// analyzer come from store, and facts it exports land there, so drivers that
// analyze packages in dependency order get cross-package propagation.
func RunFacts(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, store *FactStore) (diags []Diagnostic, suppressed int, err error) {
	pass := NewPass(a, fset, files, pkg, info, func(d Diagnostic) { diags = append(diags, d) }, store)
	if _, err := a.Run(pass); err != nil {
		return nil, 0, fmt.Errorf("%s: %w", a.Name, err)
	}
	return diags, pass.Suppressed, nil
}

// NewInfo returns a types.Info with every map analyzers rely on allocated.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}
