// Package analysis is a minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis API surface that nouslint's analyzers
// program against. The container this repo builds in has no module proxy
// access and the module is deliberately stdlib-only, so instead of vendoring
// x/tools we keep the analyzers written to the upstream shape (Analyzer,
// Pass, Diagnostic) and supply the ~150 lines of harness they need. If the
// module ever grows a real x/tools dependency, each analyzer ports by
// changing one import line.
//
// On top of the upstream shape this package adds the //nouslint:allow
// suppression protocol shared by every analyzer:
//
//	//nouslint:allow <rule> -- <reason>
//
// placed on the flagged line or the line immediately above suppresses a
// diagnostic from analyzer <rule>. The reason is mandatory: an allow without
// one is itself reported. Suppressions are counted per Pass so drivers can
// surface how many findings are being waived.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// Analyzer describes one nouslint rule: a name (also the rule token accepted
// by //nouslint:allow), documentation, and the function that runs it.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) (any, error)
}

// Diagnostic is one finding, positioned inside Pass.Fset.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic. It is pre-wired by NewPass to apply
	// //nouslint:allow suppression before forwarding to the sink.
	Report func(Diagnostic)

	// Suppressed counts diagnostics waived by a well-formed allow
	// directive during this pass.
	Suppressed int

	allows map[string][]*allowDirective // file name -> directives
	sink   func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// allowDirective is one parsed //nouslint:allow comment.
type allowDirective struct {
	line   int // line the directive suppresses (the comment line; also covers line+1)
	ownLn  int // line the comment itself sits on, for error reporting
	pos    token.Pos
	rules  []string
	reason string
}

var allowRe = regexp.MustCompile(`^//nouslint:allow\s+([a-z, ]+?)\s*(?:--\s*(.*))?$`)

// NewPass builds a Pass for one package, scanning its files for
// //nouslint:allow directives and wiring Report through the suppression
// filter into sink. A directive naming the pass's analyzer with an empty
// reason is reported immediately as malformed.
func NewPass(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, sink func(Diagnostic)) *Pass {
	p := &Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
		allows:    make(map[string][]*allowDirective),
		sink:      sink,
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				if !strings.HasPrefix(text, "//nouslint:") {
					continue
				}
				m := allowRe.FindStringSubmatch(text)
				pos := fset.Position(c.Pos())
				if m == nil {
					sink(Diagnostic{Pos: c.Pos(), Message: "malformed nouslint directive (want //nouslint:allow <rule> -- <reason>)"})
					continue
				}
				d := &allowDirective{line: pos.Line, ownLn: pos.Line, pos: c.Pos(), reason: strings.TrimSpace(m[2])}
				for _, r := range strings.FieldsFunc(m[1], func(r rune) bool { return r == ',' || r == ' ' }) {
					if r != "" {
						d.rules = append(d.rules, r)
					}
				}
				if d.matches(a.Name) && d.reason == "" {
					sink(Diagnostic{Pos: c.Pos(), Message: fmt.Sprintf("//nouslint:allow %s needs a reason (append `-- <why>`)", a.Name)})
					continue
				}
				p.allows[pos.Filename] = append(p.allows[pos.Filename], d)
			}
		}
	}
	p.Report = func(d Diagnostic) {
		if p.suppress(d) {
			p.Suppressed++
			return
		}
		p.sink(d)
	}
	return p
}

func (d *allowDirective) matches(rule string) bool {
	for _, r := range d.rules {
		if r == rule || r == "all" {
			return true
		}
	}
	return false
}

// suppress reports whether a well-formed allow directive for this analyzer
// covers the diagnostic: the directive sits on the same line (trailing
// comment) or on the line immediately above.
func (p *Pass) suppress(d Diagnostic) bool {
	pos := p.Fset.Position(d.Pos)
	for _, a := range p.allows[pos.Filename] {
		if !a.matches(p.Analyzer.Name) || a.reason == "" {
			continue
		}
		if a.line == pos.Line || a.line == pos.Line-1 {
			return true
		}
	}
	return false
}

// Run executes one analyzer over one package and returns the surviving
// diagnostics plus the count of allow-suppressed ones.
func Run(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) (diags []Diagnostic, suppressed int, err error) {
	pass := NewPass(a, fset, files, pkg, info, func(d Diagnostic) { diags = append(diags, d) })
	if _, err := a.Run(pass); err != nil {
		return nil, 0, fmt.Errorf("%s: %w", a.Name, err)
	}
	return diags, pass.Suppressed, nil
}

// NewInfo returns a types.Info with every map analyzers rely on allocated.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}
