package noclock_test

import (
	"testing"

	"nous/internal/analysis/analysistest"
	"nous/internal/analysis/noclock"
)

func TestNoClock(t *testing.T) {
	analysistest.Run(t, "testdata", noclock.Analyzer, "nous/internal/qa")
}
