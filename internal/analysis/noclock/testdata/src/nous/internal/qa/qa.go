// Fixture qa package: the injected reference-time seam and the raw clock
// reads the rule bans.
package qa

import "time"

type Answer struct{}

func ParseAt(q string, ref time.Time) Answer { return Answer{} }

// Parse reifies the wall clock straight into the seam: allowed.
func Parse(q string) Answer {
	return ParseAt(q, time.Now())
}

type Executor struct {
	Now func() time.Time
}

// now is the injected-clock fallback seam itself: allowed.
func (ex *Executor) now() time.Time {
	if ex.Now != nil {
		return ex.Now()
	}
	return time.Now()
}

func (ex *Executor) goodSeam(q string) Answer {
	return ParseAt(q, ex.now())
}

func (ex *Executor) badStamp() time.Time {
	return time.Now() // want `breaks plan determinism`
}

func badWindowEnd() int64 {
	t := time.Now() // want `breaks plan determinism`
	return t.Unix()
}

func allowedLatencyProbe() time.Time {
	//nouslint:allow noclock -- latency metric only, never reaches an answer
	return time.Now()
}
