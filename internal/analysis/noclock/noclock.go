// Package noclock implements the nouslint rule that keeps plan execution and
// question parsing deterministic: inside internal/plan and internal/qa,
// reading the wall clock anywhere but the injected reference-time seam makes
// answers depend on when they ran — relative qualifiers ("last week") stop
// resolving against the caller-supplied instant, replayed plans diverge, and
// (epoch, window) cache keys stop being stable because the same question
// quantizes to a different window each call.
//
// time.Now() is permitted in exactly two shapes, both of which route the
// instant through the seam instead of using it directly:
//
//   - inside a function named "now": the `func (ex *Executor) now()` idiom
//     that falls back to the clock only when no ex.Now was injected;
//   - as an argument to a call whose callee name ends in "At" (ParseAt,
//     AskAt, ...): the wall clock is immediately reified into an explicit
//     reference time that flows through the deterministic path.
//
// Anything else needs a //nouslint:allow noclock -- <reason>.
package noclock

import (
	"go/ast"

	"nous/internal/analysis"
)

// scopedPkgs are the packages (matched by path suffix) the rule applies to.
var scopedPkgs = []string{"internal/plan", "internal/qa"}

var Analyzer = &analysis.Analyzer{
	Name: "noclock",
	Doc: "time.Now() is banned in internal/plan and internal/qa except via the injected " +
		"reference-time seam (a now() fallback or an immediate *At(...) argument)",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	scoped := false
	for _, p := range scopedPkgs {
		if analysis.PkgPathIs(pass.Pkg.Path(), p) {
			scoped = true
			break
		}
	}
	if !scoped {
		return nil, nil
	}
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset.Position(f.Pos()).Filename) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fd.Name.Name == "now" {
				// The injected-clock fallback seam itself.
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil, nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	// seamArgs collects time.Now() calls appearing directly as arguments to
	// a *At(...) call; those route the clock through the reference-time seam.
	seamArgs := make(map[*ast.CallExpr]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name := analysis.CalleeName(call); len(name) > 2 && name[len(name)-2:] == "At" {
			for _, arg := range call.Args {
				if inner, ok := ast.Unparen(arg).(*ast.CallExpr); ok && isTimeNow(pass, inner) {
					seamArgs[inner] = true
				}
			}
		}
		return true
	})
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isTimeNow(pass, call) || seamArgs[call] {
			return true
		}
		pass.Reportf(call.Pos(),
			"time.Now() in %s breaks plan determinism: inject the reference time (Now field / ParseAt) instead",
			fd.Name.Name)
		return true
	})
}

func isTimeNow(pass *analysis.Pass, call *ast.CallExpr) bool {
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	return fn != nil && fn.Name() == "Now" && analysis.FuncPkgPath(fn) == "time"
}
