// Package analysistest runs a nouslint analyzer over fixture packages laid
// out GOPATH-style under an analyzer's testdata directory and checks its
// diagnostics against // want "regexp" comments, mirroring (a useful subset
// of) golang.org/x/tools/go/analysis/analysistest:
//
//	testdata/src/<import/path>/*.go
//
// Fixture files annotate the lines they expect findings on:
//
//	g.shards[b].mu.Lock() // want `ascending`
//
// Every `// want` pattern must be matched by exactly one diagnostic on that
// line and every diagnostic must be claimed by a pattern; leftovers on
// either side fail the test. A fixture line with no comment asserts the
// analyzer stays silent there, which is how each rule's negative cases are
// pinned.
//
// Imports inside fixtures resolve against testdata/src first, so a fixture
// can model "nous/internal/graph" with a ten-line fake; anything else is
// type-checked from GOROOT source via the stdlib source importer.
//
// Fixtures are multi-package: every fixture package a named package
// (transitively) imports is itself analyzed, in dependency order, against a
// shared fact store — so facts exported while analyzing a dependency are
// importable when its dependents are analyzed, exactly as the real drivers
// propagate them. Only the packages named in the Run call have their
// diagnostics and facts checked; dependencies pulled in by imports are
// analyzed for their fact side effects alone.
//
// Exported object facts are asserted with
//
//	// wantfact Name:"pattern"
//	// wantfact Type.Method:"pattern"
//
// anywhere in the fixture package: the named object must carry a fact whose
// string form matches the pattern. Every wantfact must be satisfied or the
// test fails.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"nous/internal/analysis"
)

// Run loads each fixture package below testdata/src, analyzes every loaded
// package (named ones and their fixture dependencies) in dependency order
// against one shared fact store, and reports mismatches between diagnostics
// and // want expectations — and between exported facts and // wantfact
// expectations — for the named packages on t.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgpaths ...string) {
	t.Helper()
	ld := newLoader(testdata)
	for _, path := range pkgpaths {
		if _, err := ld.load(path); err != nil {
			t.Errorf("loading fixture %s: %v", path, err)
			return
		}
	}

	// ld.order is completion order: a package finishes loading only after
	// its fixture imports have, so it is a topological order of the
	// dependency graph — the order facts must flow in.
	store := analysis.NewFactStore()
	diagsByPkg := make(map[string][]analysis.Diagnostic, len(ld.order))
	for _, path := range ld.order {
		pkg := ld.pkgs[path]
		diags, _, err := analysis.RunFacts(a, ld.fset, pkg.files, pkg.types, pkg.info, store)
		if err != nil {
			t.Errorf("%s: running %s: %v", path, a.Name, err)
			return
		}
		diagsByPkg[path] = diags
	}
	for _, path := range pkgpaths {
		pkg := ld.pkgs[path]
		check(t, ld.fset, path, pkg.files, diagsByPkg[path])
		checkFacts(t, ld.fset, pkg.files, store.ObjectFacts(a.Name, path))
	}
}

// want is one expectation parsed from a fixture comment.
type want struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

var wantRe = regexp.MustCompile("// want (.*)$")
var wantArgRe = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")
var wantFactRe = regexp.MustCompile(`// wantfact ([\w.]+):"((?:[^"\\]|\\.)*)"`)

// checkFacts verifies every // wantfact comment in the package against the
// object facts the analyzer exported for it.
func checkFacts(t *testing.T, fset *token.FileSet, files []*ast.File, facts []analysis.ObjectFact) {
	t.Helper()
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, m := range wantFactRe.FindAllStringSubmatch(c.Text, -1) {
					pos := fset.Position(c.Pos())
					objPath, pat := m[1], m[2]
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Errorf("%s: bad // wantfact pattern %q: %v", pos, pat, err)
						continue
					}
					found := false
					for _, of := range facts {
						if of.ObjPath == objPath && re.MatchString(fmt.Sprint(of.Fact)) {
							found = true
							break
						}
					}
					if !found {
						t.Errorf("%s: expected fact on %s matching %q; exported facts: %v", pos, objPath, pat, factsOn(facts, objPath))
					}
				}
			}
		}
	}
}

// factsOn renders the facts exported for one object, for failure messages.
func factsOn(facts []analysis.ObjectFact, objPath string) []string {
	var out []string
	for _, of := range facts {
		if of.ObjPath == objPath {
			out = append(out, fmt.Sprint(of.Fact))
		}
	}
	return out
}

func check(t *testing.T, fset *token.FileSet, pkgpath string, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				args := wantArgRe.FindAllStringSubmatch(m[1], -1)
				if len(args) == 0 {
					t.Errorf("%s: malformed // want comment: %s", pos, c.Text)
					continue
				}
				for _, arg := range args {
					pat := arg[1]
					if pat == "" {
						pat = arg[2]
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Errorf("%s: bad // want pattern %q: %v", pos, pat, err)
						continue
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, pattern: re})
				}
			}
		}
	}

	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		claimed := false
		for _, w := range wants {
			if !w.matched && w.file == pos.Filename && w.line == pos.Line && w.pattern.MatchString(d.Message) {
				w.matched = true
				claimed = true
				break
			}
		}
		if !claimed {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.pattern)
		}
	}
	_ = pkgpath
}

// loader type-checks fixture packages with memoization. Fixture import paths
// shadow real ones; everything unknown falls back to the GOROOT source
// importer.
type loader struct {
	root   string // testdata directory
	fset   *token.FileSet
	pkgs   map[string]*fixturePkg
	order  []string // load-completion order == dependency order
	stdlib types.Importer
}

type fixturePkg struct {
	files []*ast.File
	types *types.Package
	info  *types.Info
}

func newLoader(testdata string) *loader {
	fset := token.NewFileSet()
	return &loader{
		root:   testdata,
		fset:   fset,
		pkgs:   make(map[string]*fixturePkg),
		stdlib: importer.ForCompiler(fset, "source", nil),
	}
}

func (ld *loader) load(path string) (*fixturePkg, error) {
	if p, ok := ld.pkgs[path]; ok {
		if p == nil {
			return nil, fmt.Errorf("import cycle through %s", path)
		}
		return p, nil
	}
	ld.pkgs[path] = nil // cycle marker
	dir := filepath.Join(ld.root, "src", filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := analysis.NewInfo()
	conf := types.Config{Importer: (*fixtureImporter)(ld)}
	tpkg, err := conf.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	p := &fixturePkg{files: files, types: tpkg, info: info}
	ld.pkgs[path] = p
	ld.order = append(ld.order, path)
	return p, nil
}

// fixtureImporter adapts loader to types.Importer, preferring fixture
// packages over the stdlib.
type fixtureImporter loader

func (fi *fixtureImporter) Import(path string) (*types.Package, error) {
	ld := (*loader)(fi)
	if dir := filepath.Join(ld.root, "src", filepath.FromSlash(path)); dirExists(dir) {
		p, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		return p.types, nil
	}
	return ld.stdlib.Import(path)
}

func dirExists(dir string) bool {
	st, err := os.Stat(dir)
	return err == nil && st.IsDir()
}
