package analysis

import (
	"errors"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// testFact is the fact type the framework tests exchange.
type testFact struct{ Note string }

func (*testFact) AFact()           {}
func (f *testFact) String() string { return "testFact(" + f.Note + ")" }

// otherFact exists so schema changes between "builds" can be simulated.
type otherFact struct{ N int }

func (*otherFact) AFact()         {}
func (*otherFact) String() string { return "otherFact" }

func checkPkg(t *testing.T, path, src string) (*token.FileSet, []*ast.File, *types.Package, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path+".go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := NewInfo()
	pkg, err := (&types.Config{}).Check(path, fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	return fset, []*ast.File{f}, pkg, info
}

const factSrc = `package p

type T struct{}

func (T) M() {}

func F() {}
`

func TestObjectPathRoundTrip(t *testing.T) {
	_, _, pkg, _ := checkPkg(t, "p", factSrc)
	for _, want := range []string{"F", "T", "T.M"} {
		obj := resolveObject(pkg, want)
		if obj == nil {
			t.Fatalf("resolveObject(%q) = nil", want)
		}
		got, ok := ObjectPath(obj)
		if !ok || got != want {
			t.Errorf("ObjectPath(%v) = %q, %v; want %q", obj, got, ok, want)
		}
	}
}

func TestFactGobRoundTrip(t *testing.T) {
	az := &Analyzer{
		Name:      "factprobe",
		Doc:       "test analyzer exchanging testFacts",
		FactTypes: []Fact{(*testFact)(nil), (*otherFact)(nil)},
		Run:       func(*Pass) (any, error) { return nil, nil },
	}
	RegisterFactTypes([]*Analyzer{az})

	fset, files, pkg, info := checkPkg(t, "dep", factSrc)
	store := NewFactStore()
	pass := NewPass(az, fset, files, pkg, info, func(Diagnostic) {}, store)
	pass.ExportObjectFact(pkg.Scope().Lookup("F"), &testFact{Note: "exported-on-F"})
	pass.ExportObjectFact(resolveObject(pkg, "T.M"), &testFact{Note: "exported-on-T.M"})
	pass.ExportPackageFact(&otherFact{N: 7})

	data, err := EncodeFacts(store, []*Analyzer{az})
	if err != nil {
		t.Fatal(err)
	}

	// A fresh store — a different process in vetx terms — sees the same
	// facts after decoding.
	store2 := NewFactStore()
	if err := DecodeFacts(data, []*Analyzer{az}, store2); err != nil {
		t.Fatal(err)
	}
	pass2 := NewPass(az, fset, files, pkg, info, func(Diagnostic) {}, store2)
	var tf testFact
	if !pass2.ImportObjectFact(pkg.Scope().Lookup("F"), &tf) || tf.Note != "exported-on-F" {
		t.Errorf("ImportObjectFact(F) = %+v, want exported-on-F", tf)
	}
	if !pass2.ImportObjectFact(resolveObject(pkg, "T.M"), &tf) || tf.Note != "exported-on-T.M" {
		t.Errorf("ImportObjectFact(T.M) = %+v, want exported-on-T.M", tf)
	}
	var of otherFact
	if !pass2.ImportPackageFact(pkg, &of) || of.N != 7 {
		t.Errorf("ImportPackageFact = %+v, want N=7", of)
	}
	if all := pass2.AllObjectFacts(); len(all) != 2 {
		t.Errorf("AllObjectFacts = %v, want 2 entries", all)
	} else {
		if all[0].ObjPath != "F" || all[1].ObjPath != "T.M" {
			t.Errorf("AllObjectFacts order = %q, %q; want F, T.M", all[0].ObjPath, all[1].ObjPath)
		}
		if all[0].Object == nil || all[1].Object == nil {
			t.Errorf("AllObjectFacts objects unresolved: %v", all)
		}
	}
}

func TestForeignSchemaVetxIsCacheMiss(t *testing.T) {
	// "This build" and "a different nouslint build" disagree on the fact
	// schema: same analyzer name, different fact type shape.
	writer := &Analyzer{Name: "factprobe", FactTypes: []Fact{(*testFact)(nil)}}
	reader := &Analyzer{Name: "factprobe", FactTypes: []Fact{(*otherFact)(nil)}}
	RegisterFactTypes([]*Analyzer{writer, reader})

	store := NewFactStore()
	store.put("factprobe", "dep", "F", &testFact{Note: "x"})
	data, err := EncodeFacts(store, []*Analyzer{writer})
	if err != nil {
		t.Fatal(err)
	}
	into := NewFactStore()
	if err := DecodeFacts(data, []*Analyzer{reader}, into); !errors.Is(err, ErrSchemaMismatch) {
		t.Fatalf("DecodeFacts with foreign schema: err = %v, want ErrSchemaMismatch", err)
	}
	if len(into.facts) != 0 {
		t.Errorf("store after mismatched decode has %d facts, want 0", len(into.facts))
	}

	// Garbage and truncated payloads are mismatches too, never panics.
	for _, bad := range [][]byte{nil, []byte("not a vetx"), data[:len(vetxMagic)+3]} {
		if err := DecodeFacts(bad, []*Analyzer{reader}, into); err == nil {
			t.Errorf("DecodeFacts(%q) = nil error, want mismatch", bad)
		}
	}
}

func TestUndeclaredFactTypeRejected(t *testing.T) {
	az := &Analyzer{Name: "nofacts", Run: func(*Pass) (any, error) { return nil, nil }}
	fset, files, pkg, info := checkPkg(t, "q", factSrc)
	pass := NewPass(az, fset, files, pkg, info, func(Diagnostic) {}, nil)
	defer func() {
		r := recover()
		if r == nil || !strings.Contains(r.(string), "not declared in FactTypes") {
			t.Errorf("ExportObjectFact with undeclared fact type: recover = %v, want FactTypes panic", r)
		}
	}()
	pass.ExportObjectFact(pkg.Scope().Lookup("F"), &testFact{Note: "boom"})
}

func TestSchemaFingerprintSensitivity(t *testing.T) {
	a := &Analyzer{Name: "a", FactTypes: []Fact{(*testFact)(nil)}}
	b := &Analyzer{Name: "a", FactTypes: []Fact{(*otherFact)(nil)}}
	c := &Analyzer{Name: "c", FactTypes: []Fact{(*testFact)(nil)}}
	if SchemaFingerprint([]*Analyzer{a}) == SchemaFingerprint([]*Analyzer{b}) {
		t.Error("fingerprint ignores fact type shape")
	}
	if SchemaFingerprint([]*Analyzer{a}) == SchemaFingerprint([]*Analyzer{c}) {
		t.Error("fingerprint ignores analyzer name")
	}
	if SchemaFingerprint([]*Analyzer{a, c}) != SchemaFingerprint([]*Analyzer{c, a}) {
		t.Error("fingerprint depends on analyzer order")
	}
}
