package qa

import (
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"
	"time"

	"nous/internal/temporal"
)

var parseNow = time.Date(2016, 3, 15, 12, 0, 0, 0, time.UTC)

func mustParseAt(t *testing.T, q string) Query {
	t.Helper()
	parsed, err := ParseAt(q, parseNow)
	if err != nil {
		t.Fatalf("ParseAt(%q): %v", q, err)
	}
	return parsed
}

func TestParseTemporalQualifiers(t *testing.T) {
	y2015 := time.Date(2015, 1, 1, 0, 0, 0, 0, time.UTC).Unix()
	y2016 := time.Date(2016, 1, 1, 0, 0, 0, 0, time.UTC).Unix()
	y2017 := time.Date(2017, 1, 1, 0, 0, 0, 0, time.UTC).Unix()

	cases := []struct {
		q       string
		class   Class
		subject string
		window  temporal.Window
	}{
		{"Tell me about DJI in 2015", ClassEntity, "DJI",
			temporal.Window{Since: y2015, Until: y2016}},
		{"Tell me about DJI during 2015", ClassEntity, "DJI",
			temporal.Window{Since: y2015, Until: y2016}},
		{"Tell me about DJI between 2015 and 2016", ClassEntity, "DJI",
			temporal.Window{Since: y2015, Until: y2017}},
		{"Tell me about DJI since 2015", ClassEntity, "DJI",
			temporal.Window{Since: y2015, Until: math.MaxInt64}},
		{"Tell me about DJI before 2015", ClassEntity, "DJI",
			temporal.Window{Since: math.MinInt64, Until: y2015}},
		{"Tell me about DJI as of 2015", ClassEntity, "DJI",
			temporal.Window{Since: math.MinInt64, Until: y2016}},
		{"Tell me about DJI as of 2015-06-30", ClassEntity, "DJI",
			temporal.Window{Since: math.MinInt64, Until: time.Date(2015, 7, 1, 0, 0, 0, 0, time.UTC).Unix()}},
		// Relative windows quantize to the minute (parseNow is on an exact
		// minute, so Since is unchanged and Until is the next minute).
		{"Tell me about DJI last week", ClassEntity, "DJI",
			temporal.Window{Since: parseNow.AddDate(0, 0, -7).Unix(), Until: parseNow.Unix() + 60}},
		{"Tell me about DJI in the last 3 months", ClassEntity, "DJI",
			temporal.Window{Since: parseNow.AddDate(0, -3, 0).Unix(), Until: parseNow.Unix() + 60}},
		{"Tell me about DJI over the past 2 years", ClassEntity, "DJI",
			temporal.Window{Since: parseNow.AddDate(-2, 0, 0).Unix(), Until: parseNow.Unix() + 60}},
	}
	for _, c := range cases {
		got := mustParseAt(t, c.q)
		if got.Class != c.class || got.Subject != c.subject {
			t.Errorf("%q parsed to class=%s subject=%q", c.q, got.Class, got.Subject)
			continue
		}
		if got.Window != c.window {
			t.Errorf("%q window = %+v, want %+v", c.q, got.Window, c.window)
		}
	}
}

func TestRelativeWindowsShareCacheKeyWithinMinute(t *testing.T) {
	// Two asks seconds apart must resolve "last week" to the same window,
	// or every request would mint a fresh windowed-PageRank cache key.
	a, err := ParseAt("Tell me about DJI last week", parseNow.Add(1*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseAt("Tell me about DJI last week", parseNow.Add(42*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if a.Window != b.Window {
		t.Fatalf("windows differ within one minute: %+v vs %+v", a.Window, b.Window)
	}
}

func TestParseTemporalAcrossClasses(t *testing.T) {
	q := mustParseAt(t, "How is Windermere related to DJI in 2015?")
	if q.Class != ClassRelationship || q.Subject != "Windermere" || q.Object != "DJI" {
		t.Fatalf("parsed %+v", q)
	}
	if !q.Window.Bounded() {
		t.Fatal("relationship query lost its window")
	}
	q = mustParseAt(t, "What was trending in 2015?")
	if q.Class != ClassTrending || !q.Window.Bounded() {
		t.Fatalf("trending query = %+v", q)
	}
	q = mustParseAt(t, "What does DJI manufacture since 2015?")
	if q.Class != ClassFact || q.Predicate != "manufactures" || !q.Window.Bounded() {
		t.Fatalf("fact query = %+v", q)
	}
	// No qualifier → unbounded window, same query otherwise.
	plain := mustParseAt(t, "Tell me about DJI")
	if plain.Window != (temporal.Window{}) {
		t.Fatalf("plain question got window %+v", plain.Window)
	}
	withQ := mustParseAt(t, "Tell me about DJI last month")
	plain.Window = withQ.Window
	if !reflect.DeepEqual(plain, withQ) {
		t.Fatalf("qualifier changed more than the window: %+v vs %+v", plain, withQ)
	}
}

func TestParseRejectsEmptyRange(t *testing.T) {
	_, err := ParseAt("Tell me about DJI between 2016 and 2015", parseNow)
	if err == nil {
		t.Fatal("inverted range accepted")
	}
	if !errors.Is(err, ErrParse) {
		t.Fatalf("range error is not ErrParse: %v", err)
	}
}

func TestParseErrorsMatchErrParse(t *testing.T) {
	for _, q := range []string{"", "colorless green ideas sleep furiously"} {
		_, err := ParseAt(q, parseNow)
		if err == nil {
			t.Fatalf("%q parsed", q)
		}
		if !errors.Is(err, ErrParse) {
			t.Fatalf("%q error %v does not match ErrParse", q, err)
		}
	}
}

// TestFullRangeWindowByteIdentical pins the acceptance criterion: a
// full-range window must return byte-identical answers to the unwindowed
// query, across every windowed query class.
func TestFullRangeWindowByteIdentical(t *testing.T) {
	ex := buildExecutor(t)
	questions := []string{
		"Tell me about DJI",
		"Tell me about Windermere",
		"How is Windermere related to DJI?",
		"What does DJI manufacture?",
		"Did GoPro acquire Aeros Labs?",
		"What is trending?",
	}
	for _, q := range questions {
		plain, err := ex.Ask(q)
		if err != nil {
			t.Fatalf("Ask(%q): %v", q, err)
		}
		windowed, err := ex.AskWindow(q, temporal.All())
		if err != nil {
			t.Fatalf("AskWindow(%q, All): %v", q, err)
		}
		if plain.Text != windowed.Text {
			t.Fatalf("full-range answer for %q diverges:\n%s\nvs\n%s", q, plain.Text, windowed.Text)
		}
		if !reflect.DeepEqual(plain, windowed) {
			t.Fatalf("full-range structured answer for %q diverges", q)
		}
	}
}

// TestWideBoundedWindowSameFacts checks that a bounded window covering every
// timestamp returns the same facts and paths as the unwindowed query (the
// windowed code path, not the IsAll fast path).
func TestWideBoundedWindowSameFacts(t *testing.T) {
	ex := buildExecutor(t)
	wide := temporal.Window{Since: math.MinInt64 + 1, Until: math.MaxInt64 - 1}

	plain, err := ex.Run(Query{Class: ClassEntity, Subject: "Windermere", K: 10})
	if err != nil {
		t.Fatal(err)
	}
	windowed, err := ex.Run(Query{Class: ClassEntity, Subject: "Windermere", K: 10, Window: wide})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.Entity.Facts, windowed.Entity.Facts) {
		t.Fatalf("wide window changed the fact set:\n%+v\nvs\n%+v", plain.Entity.Facts, windowed.Entity.Facts)
	}
	if math.Abs(plain.Entity.Importance-windowed.Entity.Importance) > 1e-9 {
		t.Fatalf("wide window changed importance: %v vs %v", plain.Entity.Importance, windowed.Entity.Importance)
	}
}

func TestWindowedEntityFiltersFacts(t *testing.T) {
	ex := buildExecutor(t)
	// All extracted facts are dated 2015-06-01; a 2014 window must keep only
	// curated facts, a window containing June 2015 keeps everything.
	a, err := ex.Ask("Tell me about Windermere in 2014")
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Entity.Facts) != 0 {
		t.Fatalf("2014 window leaked extracted facts: %+v", a.Entity.Facts)
	}
	if !strings.Contains(a.Text, "window:") {
		t.Fatalf("windowed answer text lacks window line:\n%s", a.Text)
	}
	a, err = ex.Ask("Tell me about Windermere in 2015")
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Entity.Facts) != 2 {
		t.Fatalf("2015 window facts = %+v, want the two deploys extractions", a.Entity.Facts)
	}
	// Curated facts survive any window.
	a, err = ex.Ask("Tell me about DJI in 2014")
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Entity.Facts) != 2 {
		t.Fatalf("curated facts filtered by window: %+v", a.Entity.Facts)
	}
}

func TestWindowedFactQuery(t *testing.T) {
	ex := buildExecutor(t)
	a, err := ex.Ask("Did GoPro acquire Aeros Labs in 2014?")
	if err != nil {
		t.Fatal(err)
	}
	if a.Fact.Known {
		t.Fatal("2014 window reported a 2015 fact as known")
	}
	a, err = ex.Ask("Did GoPro acquire Aeros Labs in 2015?")
	if err != nil {
		t.Fatal(err)
	}
	if !a.Fact.Known {
		t.Fatal("2015 window missed the 2015 fact")
	}
}

// TestEmptyWindowIntersectionYieldsNothing: a question window disjoint from
// the caller's API window must answer "nothing" across classes — including
// trending, which derives its reference time from the window's end.
func TestEmptyWindowIntersectionYieldsNothing(t *testing.T) {
	ex := buildExecutor(t)
	apiWin := temporal.Window{Since: time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC).Unix(), Until: math.MaxInt64}
	a, err := ex.AskWindow("What was trending in 2015?", apiWin)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Trends) != 0 {
		t.Fatalf("disjoint window returned trends: %+v", a.Trends)
	}
	// The epoch-straddling disjoint pair must not flip to all-of-time.
	a, err = ex.AskWindow("What was trending before 1970?",
		temporal.Window{Since: 0, Until: math.MaxInt64})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Trends) != 0 {
		t.Fatalf("epoch-straddling empty window returned trends: %+v", a.Trends)
	}
	// Entity summaries in the same empty window keep only curated facts.
	e, err := ex.AskWindow("Tell me about Windermere in 2015", apiWin)
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Entity.Facts) != 0 {
		t.Fatalf("empty window leaked facts: %+v", e.Entity.Facts)
	}
}

func TestWindowedRelationshipQuery(t *testing.T) {
	ex := buildExecutor(t)
	// Windermere -deploys-> Phantom 3 <-manufactures- DJI; the deploys hop
	// is extracted (2015-06-01), manufactures is curated.
	a, err := ex.Ask("How is Windermere related to DJI in 2015?")
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Paths) == 0 {
		t.Fatalf("no path inside the window:\n%s", a.Text)
	}
	a, err = ex.Ask("How is Windermere related to DJI in 2014?")
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Paths) != 0 {
		t.Fatalf("extracted hop visible outside its window:\n%s", a.Text)
	}
}

func TestParseDiffForms(t *testing.T) {
	y := func(yr int) int64 { return time.Date(yr, 1, 1, 0, 0, 0, 0, time.UTC).Unix() }
	cases := []struct {
		q       string
		subject string
		a, b    temporal.Window
	}{
		{"What changed about DJI between 2015 and 2016?", "DJI",
			temporal.Window{Since: y(2015), Until: y(2016)}, temporal.Window{Since: y(2016), Until: y(2017)}},
		{"what has changed between 2014 and 2016", "",
			temporal.Window{Since: y(2014), Until: y(2015)}, temporal.Window{Since: y(2016), Until: y(2017)}},
		{"How did DJI change between 2015 and 2016?", "DJI",
			temporal.Window{Since: y(2015), Until: y(2016)}, temporal.Window{Since: y(2016), Until: y(2017)}},
		{"What is new about DJI since 2015?", "DJI",
			temporal.Window{Since: math.MinInt64, Until: y(2015)}, temporal.Window{Since: y(2015), Until: math.MaxInt64}},
		{"What's new about DJI since 2015?", "DJI",
			temporal.Window{Since: math.MinInt64, Until: y(2015)}, temporal.Window{Since: y(2015), Until: math.MaxInt64}},
		{"What's different between 2015 and 2016?", "",
			temporal.Window{Since: y(2015), Until: y(2016)}, temporal.Window{Since: y(2016), Until: y(2017)}},
		{"What changed about DJI between 2015-06-01 and 2015-06-12?", "DJI",
			temporal.Window{
				Since: time.Date(2015, 6, 1, 0, 0, 0, 0, time.UTC).Unix(),
				Until: time.Date(2015, 6, 2, 0, 0, 0, 0, time.UTC).Unix()},
			temporal.Window{
				Since: time.Date(2015, 6, 12, 0, 0, 0, 0, time.UTC).Unix(),
				Until: time.Date(2015, 6, 13, 0, 0, 0, 0, time.UTC).Unix()}},
	}
	for _, c := range cases {
		got := mustParseAt(t, c.q)
		if got.Class != ClassDiff || got.Subject != c.subject {
			t.Errorf("%q parsed to %+v, want diff about %q", c.q, got, c.subject)
			continue
		}
		if got.Window != c.a || got.WindowB != c.b {
			t.Errorf("%q windows = %v / %v, want %v / %v", c.q, got.Window, got.WindowB, c.a, c.b)
		}
	}
}

func TestParseDiffRejectsNonIncreasingRange(t *testing.T) {
	for _, q := range []string{
		"What changed about DJI between 2016 and 2015?",
		"What changed between 2015 and 2015?",
	} {
		_, err := ParseAt(q, parseNow)
		if err == nil {
			t.Fatalf("%q parsed", q)
		}
		if !errors.Is(err, ErrParse) {
			t.Fatalf("%q error %v does not match ErrParse", q, err)
		}
	}
}

// TestPlanStatsConcurrentWithFirstAsk pins the lazy stats-sink creation:
// reading PlanStats while another goroutine runs the executor's first query
// must be race-free (both go through the same sync.Once).
func TestPlanStatsConcurrentWithFirstAsk(t *testing.T) {
	ex := buildExecutor(t)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			ex.PlanStats()
		}
	}()
	for i := 0; i < 50; i++ {
		if _, err := ex.Ask("Tell me about DJI"); err != nil {
			t.Error(err)
			break
		}
	}
	<-done
	if st := ex.PlanStats(); st.Plans == 0 {
		t.Fatal("no plans accounted")
	}
}

// TestDiffEndToEnd executes a diff query against the window fixture: the
// extracted facts are all dated 2015-06-01, so a 2014→2015 diff reports them
// as added and the curated substrate as unchanged.
func TestDiffEndToEnd(t *testing.T) {
	ex := buildExecutor(t)
	a, err := ex.Ask("What changed about Windermere between 2014 and 2015?")
	if err != nil {
		t.Fatal(err)
	}
	if a.Class != ClassDiff || a.Diff == nil {
		t.Fatalf("diff answer = %+v", a)
	}
	if len(a.Diff.Added) != 1 || a.Diff.Added[0].Predicate != "deploys" {
		t.Fatalf("added = %+v, want the deploys extraction once (deduped)", a.Diff.Added)
	}
	if len(a.Diff.Removed) != 0 {
		t.Fatalf("removed = %+v, want none", a.Diff.Removed)
	}
	if !strings.Contains(a.Text, "+ Windermere -[deploys]-> Phantom 3") {
		t.Fatalf("text = %s", a.Text)
	}
	// Reverse direction: the extraction disappears.
	b, err := ex.Ask("What changed about Windermere between 2015 and 2016?")
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Diff.Removed) != 1 || len(b.Diff.Added) != 0 {
		t.Fatalf("reverse diff = %+v", b.Diff)
	}
	// Unknown entity degrades like the entity class.
	c, err := ex.Ask("What changed about Zorblatt between 2014 and 2015?")
	if err != nil {
		t.Fatal(err)
	}
	if c.Diff != nil || !strings.Contains(c.Text, "don't know") {
		t.Fatalf("unknown entity diff = %+v", c)
	}
}
