package qa

import (
	"testing"
	"time"

	"nous/internal/core"
	"nous/internal/plan"
)

// FuzzNormalizeDeterministic is the cache-key soundness property: parsing
// and lowering the same question twice at the same clock must yield
// byte-identical normalized plan strings — whatever the question, including
// garbage that happens to parse. A nondeterministic key would split cache
// entries at best and, combined with a collision, alias answers at worst.
func FuzzNormalizeDeterministic(f *testing.F) {
	seeds := []string{
		"What is trending?",
		"What was trending in 2015?",
		"What was trending last week?",
		"Tell me about DJI",
		"Tell me about DJI between 2014 and 2016",
		"How is Windermere related to DJI via acquired?",
		"What patterns are emerging?",
		"Did Amazon acquire Aeros in 2015?",
		"What does DJI manufacture since 2015?",
		"Who acquired Aeros Labs?",
		"What changed about DJI between 2015 and 2016?",
		"What changed between 2015-01-01 and 2015-06-01?",
		"How did DJI change between 2014 and 2016?",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	now := time.Date(2016, 3, 15, 12, 0, 0, 0, time.UTC)
	f.Fuzz(func(t *testing.T, question string) {
		lower := func() (string, bool) {
			q, err := ParseAt(question, now)
			if err != nil {
				return "", false
			}
			p, err := Lower(q)
			if err != nil {
				return "", false
			}
			return plan.Normalize(p), true
		}
		a, ok1 := lower()
		b, ok2 := lower()
		if ok1 != ok2 {
			t.Fatalf("ParseAt/Lower(%q) nondeterministic success", question)
		}
		if a != b {
			t.Fatalf("Normalize(%q) nondeterministic:\n%s\n%s", question, a, b)
		}
	})
}

// TestCacheKeyEpochComponent pins the other half of the cache key: equal
// questions at equal epochs share the full (epoch, normalized plan) key,
// and a graph mutation changes the epoch component while leaving the
// normalized string untouched — invalidation comes entirely from the epoch.
func TestCacheKeyEpochComponent(t *testing.T) {
	ex := buildWindowedExecutor(t)
	const question = "What changed about DJI between 2015 and 2016?"
	now := ex.Now()

	key := func() (uint64, string) {
		t.Helper()
		q, err := ParseAt(question, now)
		if err != nil {
			t.Fatal(err)
		}
		p, err := Lower(q)
		if err != nil {
			t.Fatal(err)
		}
		return ex.KG.Graph().Epoch(), plan.Normalize(p)
	}

	e1, k1 := key()
	e2, k2 := key()
	if e1 != e2 || k1 != k2 {
		t.Fatalf("equal question at unchanged epoch produced different keys: (%d,%q) vs (%d,%q)", e1, k1, e2, k2)
	}

	if _, err := ex.KG.AddFact(core.Triple{
		Subject: "DJI", Predicate: "manufactures", Object: "Inspire 1", Confidence: 0.9,
		Provenance: core.Provenance{Source: "wsj", Time: time.Date(2015, 8, 1, 0, 0, 0, 0, time.UTC)},
	}); err != nil {
		t.Fatal(err)
	}

	e3, k3 := key()
	if e3 == e1 {
		t.Fatal("graph mutation did not advance the epoch component")
	}
	if k3 != k1 {
		t.Fatalf("mutation changed the normalized string:\n%q\n%q", k1, k3)
	}
}
