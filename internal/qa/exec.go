package qa

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"nous/internal/analytics"
	"nous/internal/core"
	"nous/internal/disambig"
	"nous/internal/fgm"
	"nous/internal/linkpred"
	"nous/internal/pathsearch"
	"nous/internal/temporal"
	"nous/internal/trends"
)

// Answer is a structured query result plus a rendered text form.
type Answer struct {
	Class Class
	Text  string

	// Per-class payloads (only the one matching Class is populated).
	Trends   []trends.Trend
	Entity   *EntitySummary
	Paths    []ExplainedPath
	Patterns []fgm.Pattern
	Fact     *FactAnswer
}

// EntitySummary is the payload of "Tell me about X" (Fig 6).
type EntitySummary struct {
	Name       string
	Type       string
	Importance float64 // PageRank
	Facts      []core.Fact
	Activity   []int // recent weekly mention counts
}

// ExplainedPath is one relationship explanation.
type ExplainedPath struct {
	Hops      []string // rendered hops: "DJI -[acquired]-> Aeros"
	Coherence float64
}

// FactAnswer answers did/who/what fact queries.
type FactAnswer struct {
	Known      bool
	Plausible  float64 // link-prediction score when not known
	Matches    []core.ScoredEntity
	Provenance []string
}

// Executor runs parsed queries. Any dependency may be nil; the executor
// degrades gracefully (e.g. no miner → pattern queries report emptiness).
type Executor struct {
	KG       *core.KG
	Trends   *trends.Detector
	Miner    *fgm.Miner
	Searcher *pathsearch.Searcher
	Model    *linkpred.Model
	Linker   *disambig.Linker
	// Analytics supplies epoch-memoized whole-graph artifacts (PageRank
	// importance). When nil, entity summaries report zero importance rather
	// than recomputing PageRank per request.
	Analytics *analytics.Cache
	// Now supplies the query-time clock (defaults to time.Now).
	Now func() time.Time
}

// Ask parses and executes a question. Temporal qualifiers in the question
// ("last week", "in 2015") scope the answer; relative forms resolve against
// the executor's clock.
func (ex *Executor) Ask(question string) (Answer, error) {
	return ex.AskWindow(question, temporal.All())
}

// AskWindow is Ask with an additional caller-supplied window (e.g. the API's
// since/until parameters). It is intersected with any window parsed from the
// question itself; the unbounded window leaves the question's own scope
// untouched.
func (ex *Executor) AskWindow(question string, w temporal.Window) (Answer, error) {
	q, err := ParseAt(question, ex.now())
	if err != nil {
		return Answer{}, err
	}
	q.Window = q.Window.Intersect(w)
	return ex.Run(q)
}

// Run executes a parsed query.
func (ex *Executor) Run(q Query) (Answer, error) {
	switch q.Class {
	case ClassTrending:
		return ex.trending(q)
	case ClassEntity:
		return ex.entity(q)
	case ClassRelationship:
		return ex.relationship(q)
	case ClassPattern:
		return ex.patterns(q)
	case ClassFact:
		return ex.fact(q)
	}
	return Answer{}, fmt.Errorf("qa: unknown query class %q", q.Class)
}

func (ex *Executor) now() time.Time {
	if ex.Now != nil {
		return ex.Now()
	}
	return time.Now()
}

// windowRef is the reference instant for activity-style lookups under a
// window: a bounded window anchors at its (inclusive) end — "in 2015" means
// activity as of end-2015 — while an unbounded one uses the clock.
func (ex *Executor) windowRef(w temporal.Window) time.Time {
	if w.Bounded() && w.Until != math.MaxInt64 {
		return time.Unix(w.Until-1, 0)
	}
	return ex.now()
}

func (ex *Executor) trending(q Query) (Answer, error) {
	a := Answer{Class: ClassTrending}
	if ex.Trends == nil {
		a.Text = "no trend detector attached"
		return a, nil
	}
	// A bounded window moves the trend reference point to the window's end:
	// "what was trending in 2015" scores burstiness as of end-2015. An empty
	// (disjoint-intersection) window yields no trends, matching how every
	// other query class treats it.
	if !q.Window.IsEmpty() {
		a.Trends = ex.Trends.Trending(ex.windowRef(q.Window), q.K)
	}
	var b strings.Builder
	if q.Window.Bounded() {
		fmt.Fprintf(&b, "Trending in %s:\n", q.Window)
	} else {
		b.WriteString("Trending now:\n")
	}
	if len(a.Trends) == 0 {
		b.WriteString("  (nothing trending)\n")
	}
	for i, t := range a.Trends {
		fmt.Fprintf(&b, "  %2d. %-30s %-9s burst=%.1fx (%d mentions, baseline %.1f)\n",
			i+1, t.Name, t.Kind, t.Score, t.Current, t.Baseline)
	}
	a.Text = b.String()
	return a, nil
}

// resolve maps a surface form to a canonical entity name.
func (ex *Executor) resolve(surface string) (string, bool) {
	if surface == "" {
		return "", false
	}
	if _, ok := ex.KG.Entity(surface); ok {
		return surface, true
	}
	if ex.Linker != nil {
		if r := ex.Linker.LinkOne(disambig.Mention{Surface: surface}); r.Entity != "" {
			return r.Entity, true
		}
	}
	cands := ex.KG.Candidates(surface)
	if len(cands) > 0 {
		return cands[0], true
	}
	return "", false
}

func (ex *Executor) entity(q Query) (Answer, error) {
	a := Answer{Class: ClassEntity}
	name, ok := ex.resolve(q.Subject)
	if !ok {
		a.Text = fmt.Sprintf("I don't know anything about %q.", q.Subject)
		return a, nil
	}
	typ, _ := ex.KG.EntityType(name)
	sum := &EntitySummary{Name: name, Type: string(typ)}
	if id, ok := ex.KG.Entity(name); ok && ex.Analytics != nil {
		sum.Importance = ex.Analytics.WindowedImportance(id, q.Window)
	}
	facts := ex.KG.FactsAboutWindow(name, q.Window)
	if q.K > 0 && len(facts) > q.K {
		facts = facts[:q.K]
	}
	sum.Facts = facts
	if ex.Trends != nil && !q.Window.IsEmpty() {
		// Anchor the sparkline at the window's end, like trending does:
		// "tell me about X in 2015" shows 2015 activity, not today's.
		sum.Activity = ex.Trends.Series(name, ex.windowRef(q.Window), 8)
	}
	a.Entity = sum

	var b strings.Builder
	fmt.Fprintf(&b, "%s (%s)  importance=%.4f\n", sum.Name, sum.Type, sum.Importance)
	if q.Window.Bounded() {
		fmt.Fprintf(&b, "  window: %s\n", q.Window)
	}
	if len(sum.Activity) > 0 {
		fmt.Fprintf(&b, "  recent activity: %v\n", sum.Activity)
	}
	for _, f := range sum.Facts {
		marker := "extracted"
		if f.Curated {
			marker = "curated"
		}
		fmt.Fprintf(&b, "  %s -[%s]-> %s  (p=%.2f, %s", f.Subject, f.Predicate, f.Object, f.Confidence, marker)
		if f.Provenance.Source != "" {
			fmt.Fprintf(&b, ", src=%s", f.Provenance.Source)
		}
		b.WriteString(")\n")
	}
	a.Text = b.String()
	return a, nil
}

func (ex *Executor) relationship(q Query) (Answer, error) {
	a := Answer{Class: ClassRelationship}
	sName, ok1 := ex.resolve(q.Subject)
	tName, ok2 := ex.resolve(q.Object)
	if !ok1 || !ok2 {
		a.Text = fmt.Sprintf("cannot resolve %q and/or %q", q.Subject, q.Object)
		return a, nil
	}
	if ex.Searcher == nil {
		a.Text = "no path searcher attached"
		return a, nil
	}
	src, _ := ex.KG.Entity(sName)
	dst, _ := ex.KG.Entity(tName)
	paths := ex.Searcher.TopK(src, dst, pathsearch.Options{K: q.K, MaxDepth: 4, Predicate: q.Predicate, Window: q.Window})
	var b strings.Builder
	fmt.Fprintf(&b, "Paths from %s to %s", sName, tName)
	if q.Predicate != "" {
		fmt.Fprintf(&b, " via %s", q.Predicate)
	}
	if q.Window.Bounded() {
		fmt.Fprintf(&b, " within %s", q.Window)
	}
	b.WriteString(":\n")
	if len(paths) == 0 {
		b.WriteString("  (no connecting path found)\n")
	}
	for _, p := range paths {
		ep := ExplainedPath{Coherence: p.Coherence}
		for i, e := range p.Edges {
			u := p.Vertices[i]
			v := p.Vertices[i+1]
			un, _ := ex.KG.EntityName(u)
			vn, _ := ex.KG.EntityName(v)
			arrow := fmt.Sprintf("%s -[%s]-> %s", un, e.Label, vn)
			if e.Src == v { // traversed against edge direction
				arrow = fmt.Sprintf("%s <-[%s]- %s", un, e.Label, vn)
			}
			ep.Hops = append(ep.Hops, arrow)
		}
		a.Paths = append(a.Paths, ep)
		fmt.Fprintf(&b, "  coherence=%.4f: %s\n", ep.Coherence, strings.Join(ep.Hops, " ; "))
	}
	a.Text = b.String()
	return a, nil
}

func (ex *Executor) patterns(q Query) (Answer, error) {
	a := Answer{Class: ClassPattern}
	if ex.Miner == nil {
		a.Text = "no miner attached"
		return a, nil
	}
	ps := ex.Miner.ClosedPatterns()
	if q.K > 0 && len(ps) > q.K {
		ps = ps[:q.K]
	}
	a.Patterns = ps
	var b strings.Builder
	b.WriteString("Closed frequent patterns in the current window:\n")
	if len(ps) == 0 {
		b.WriteString("  (none above support threshold)\n")
	}
	for _, p := range ps {
		fmt.Fprintf(&b, "  support=%-4d %s\n", p.Support, p)
	}
	a.Text = b.String()
	return a, nil
}

func (ex *Executor) fact(q Query) (Answer, error) {
	a := Answer{Class: ClassFact}
	fa := &FactAnswer{}
	a.Fact = fa
	var b strings.Builder

	switch {
	case q.Subject != "" && q.Object != "": // did S p O?
		s, ok1 := ex.resolve(q.Subject)
		o, ok2 := ex.resolve(q.Object)
		if !ok1 || !ok2 {
			a.Text = fmt.Sprintf("cannot resolve %q / %q", q.Subject, q.Object)
			return a, nil
		}
		fa.Known = ex.KG.HasFactWindow(s, q.Predicate, o, q.Window)
		if fa.Known {
			fmt.Fprintf(&b, "Yes: %s %s %s.\n", s, q.Predicate, o)
			for _, f := range ex.KG.FactsAboutWindow(s, q.Window) {
				if f.Predicate == q.Predicate && f.Object == o {
					src := f.Provenance.Source
					if f.Provenance.Sentence != "" {
						src += ": " + f.Provenance.Sentence
					}
					fa.Provenance = append(fa.Provenance, src)
					fmt.Fprintf(&b, "  evidence (p=%.2f): %s\n", f.Confidence, src)
				}
			}
		} else {
			fa.Plausible = 0.5
			if ex.Model != nil {
				fa.Plausible = ex.Model.Score(s, q.Predicate, o)
			}
			fmt.Fprintf(&b, "Not in the knowledge graph. Plausibility score: %.2f\n", fa.Plausible)
		}
	case q.Subject != "": // what does S p?
		s, ok := ex.resolve(q.Subject)
		if !ok {
			a.Text = fmt.Sprintf("cannot resolve %q", q.Subject)
			return a, nil
		}
		fa.Matches = ex.KG.ObjectsOfWindow(s, q.Predicate, q.Window)
		fa.Known = len(fa.Matches) > 0
		fmt.Fprintf(&b, "%s %s:\n", s, q.Predicate)
		for _, m := range fa.Matches {
			fmt.Fprintf(&b, "  %s (p=%.2f)\n", m.Name, m.Score)
		}
		if len(fa.Matches) == 0 {
			b.WriteString("  (no known facts)\n")
		}
	case q.Object != "": // who p O?
		o, ok := ex.resolve(q.Object)
		if !ok {
			a.Text = fmt.Sprintf("cannot resolve %q", q.Object)
			return a, nil
		}
		fa.Matches = ex.KG.SubjectsOfWindow(q.Predicate, o, q.Window)
		fa.Known = len(fa.Matches) > 0
		fmt.Fprintf(&b, "%s %s:\n", q.Predicate, o)
		for _, m := range fa.Matches {
			fmt.Fprintf(&b, "  %s (p=%.2f)\n", m.Name, m.Score)
		}
		if len(fa.Matches) == 0 {
			b.WriteString("  (no known facts)\n")
		}
	default:
		return a, fmt.Errorf("qa: fact query without arguments")
	}
	a.Text = b.String()
	return a, nil
}

// Classes returns the five supported query classes with an example each —
// the content of the paper's Figure 5.
func Classes() []string {
	out := []string{
		string(ClassTrending) + `: "What is trending?"`,
		string(ClassEntity) + `: "Tell me about DJI"`,
		string(ClassRelationship) + `: "How is Windermere related to DJI via acquired?"`,
		string(ClassPattern) + `: "What patterns are emerging?"`,
		string(ClassFact) + `: "Did Amazon acquire Aeros?"`,
	}
	sort.Strings(out)
	return out
}
