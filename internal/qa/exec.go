package qa

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"nous/internal/analytics"
	"nous/internal/core"
	"nous/internal/disambig"
	"nous/internal/fgm"
	"nous/internal/linkpred"
	"nous/internal/pathsearch"
	"nous/internal/plan"
	"nous/internal/temporal"
	"nous/internal/trends"
)

// Answer is a structured query result plus a rendered text form.
type Answer struct {
	Class Class
	Text  string

	// Per-class payloads (only the one matching Class is populated).
	Trends   []trends.Trend
	Entity   *EntitySummary
	Paths    []ExplainedPath
	Patterns []fgm.Pattern
	Fact     *FactAnswer
	Diff     *DiffAnswer
}

// Payload types live in internal/plan (the layer that computes them); the
// aliases keep qa's public API stable.
type (
	// EntitySummary is the payload of "Tell me about X" (Fig 6).
	EntitySummary = plan.EntitySummary
	// ExplainedPath is one relationship explanation.
	ExplainedPath = plan.ExplainedPath
	// FactAnswer answers did/who/what fact queries.
	FactAnswer = plan.FactAnswer
	// DiffAnswer is the payload of a temporal diff query.
	DiffAnswer = plan.DiffAnswer
)

// Executor answers parsed queries by lowering them into logical plans
// (internal/plan) and running the plan executor — a thin compile-and-run
// shim over the query planner. Any dependency may be nil; execution degrades
// gracefully (e.g. no miner → pattern queries report emptiness).
type Executor struct {
	KG       *core.KG
	Trends   *trends.Detector
	Miner    *fgm.Miner
	Searcher *pathsearch.Searcher
	Model    *linkpred.Model
	Linker   *disambig.Linker
	// Analytics supplies epoch-memoized whole-graph artifacts (PageRank
	// importance). When nil, entity summaries report zero importance rather
	// than recomputing PageRank per request.
	Analytics *analytics.Cache
	// TIndex enables the plan operators that read the time-ordered edge
	// index directly: windowed trend backfill and whole-stream diffs. When
	// nil, trending degrades to the live detector anchored at the window's
	// end.
	TIndex *temporal.Index
	// Now supplies the query-time clock (defaults to time.Now).
	Now func() time.Time
	// PlanCacheEntries caps the plan-result cache (0 = default 256).
	PlanCacheEntries int

	statsOnce sync.Once
	stats     *plan.ExecStats

	resultsOnce sync.Once
	results     *analytics.ResultMemo[plan.Result]
}

// Ask parses and executes a question. Temporal qualifiers in the question
// ("last week", "in 2015") scope the answer; relative forms resolve against
// the executor's clock.
func (ex *Executor) Ask(question string) (Answer, error) {
	return ex.AskWindow(question, temporal.All())
}

// AskWindow is Ask with an additional caller-supplied window (e.g. the API's
// since/until parameters). It is intersected with any window parsed from the
// question itself (both windows of a diff question); the unbounded window
// leaves the question's own scope untouched.
func (ex *Executor) AskWindow(question string, w temporal.Window) (Answer, error) {
	q, err := ParseAt(question, ex.now())
	if err != nil {
		return Answer{}, err
	}
	q.Window = q.Window.Intersect(w)
	if q.Class == ClassDiff {
		q.WindowB = q.WindowB.Intersect(w)
	}
	return ex.Run(q)
}

// Run compiles a parsed query into a logical plan, optimizes it against the
// storage statistics and executes it — serving cacheable classes (diff,
// windowed trend backfill) through the epoch-keyed plan-result cache.
func (ex *Executor) Run(q Query) (Answer, error) {
	p, err := Lower(q)
	if err != nil {
		return Answer{}, err
	}
	r, err := ex.runPlan(p)
	if err != nil {
		return Answer{}, err
	}
	return Answer{
		Class:    q.Class,
		Text:     r.Text,
		Trends:   r.Trends,
		Entity:   r.Entity,
		Paths:    r.Paths,
		Patterns: r.Patterns,
		Fact:     r.Fact,
		Diff:     r.Diff,
	}, nil
}

// Plan parses a question and lowers it into its logical plan without
// executing it — the compile half of Run, for explain-style inspection
// (GET /api/plan). The caller window intersects like AskWindow.
func (ex *Executor) Plan(question string, w temporal.Window) (*plan.Plan, error) {
	q, err := ParseAt(question, ex.now())
	if err != nil {
		return nil, err
	}
	q.Window = q.Window.Intersect(w)
	if q.Class == ClassDiff {
		q.WindowB = q.WindowB.Intersect(w)
	}
	return Lower(q)
}

// runPlan executes a lowered plan: Optimize rewrites a statistics-annotated
// clone (the lowered plan itself stays the untouched reference), and plans
// whose results are pure functions of (epoch, plan) are memoized in the
// plan-result cache — a repeat at an unchanged epoch is a map read instead
// of a dated-stream re-materialization. The cache key normalizes the
// *reference* plan, so what the optimizer decided can never split or alias
// cache entries.
func (ex *Executor) runPlan(p *plan.Plan) (plan.Result, error) {
	opt := plan.Optimize(p, ex.cardinality())
	if memo := ex.resultMemo(); memo != nil && plan.Cacheable(p, ex.TIndex != nil) {
		r, _, err := memo.Get(ex.KG.Graph().Epoch(), plan.Normalize(p), func() (plan.Result, error) {
			return ex.planner().Run(opt.Plan)
		})
		return r, err
	}
	return ex.planner().Run(opt.Plan)
}

// cardinality assembles the optimizer's statistics view, or nil without a
// graph to read counters from.
func (ex *Executor) cardinality() plan.Cardinality {
	if ex.KG == nil {
		return nil
	}
	gs := &plan.GraphStats{KG: ex.KG, TIndex: ex.TIndex}
	if ex.Trends != nil {
		gs.TrendBucketSec = int64(ex.Trends.Config().Bucket / time.Second)
	}
	return gs
}

// resultMemo returns the shared plan-result cache, creating it on first use;
// nil without a graph (no epoch to key on). MaxLag is fixed at 0 — epoch
// exact — because replicas pin byte-identical reads at equal epochs, and a
// lagging cached result would break that on whichever side served it.
func (ex *Executor) resultMemo() *analytics.ResultMemo[plan.Result] {
	if ex.KG == nil {
		return nil
	}
	ex.resultsOnce.Do(func() {
		ex.results = analytics.NewResultMemo[plan.Result](ex.PlanCacheEntries, 0)
	})
	return ex.results
}

// PlanReport is one executed explain: the optimized plan with its row
// estimates, the traced actual rows (nil when the answer came from the plan
// cache — nothing executed), and the cache's view of the question.
type PlanReport struct {
	Plan   *plan.Plan   // the lowered reference plan
	Costed *plan.Costed // optimized tree + est_rows annotations
	Trace  *plan.Trace  // actual_rows; nil on a cache hit
	// Cacheable reports whether the plan's class and shape qualify for the
	// plan-result cache; Cached whether a fresh result was already cached
	// at the current epoch when the explain ran.
	Cacheable bool
	Cached    bool
}

// Explain renders the costed explain tree (est_rows vs actual_rows).
func (r *PlanReport) Explain() string { return r.Costed.Explain(r.Trace) }

// Describe renders the costed operator tree in JSON-able form.
func (r *PlanReport) Describe() plan.NodeDesc { return r.Costed.Describe(r.Trace) }

// ExplainQuery compiles, optimizes and *executes* a question, reporting the
// costed plan with per-operator estimated and actual rows — the engine
// behind GET /api/plan. Cacheable questions go through the plan cache: an
// explain of an already-cached question reports Cached=true and carries no
// actual_rows (nothing was executed), and a cold explain leaves the cache
// warm for the subsequent real query.
func (ex *Executor) ExplainQuery(question string, w temporal.Window) (*PlanReport, error) {
	p, err := ex.Plan(question, w)
	if err != nil {
		return nil, err
	}
	opt := plan.Optimize(p, ex.cardinality())
	rep := &PlanReport{Plan: p, Costed: opt}
	memo := ex.resultMemo()
	rep.Cacheable = memo != nil && plan.Cacheable(p, ex.TIndex != nil)
	if rep.Cacheable {
		epoch := ex.KG.Graph().Epoch()
		key := plan.Normalize(p)
		if rep.Cached = memo.Peek(epoch, key); rep.Cached {
			return rep, nil
		}
		var tr *plan.Trace
		if _, _, err := memo.Get(epoch, key, func() (plan.Result, error) {
			r, t, err := ex.planner().RunTraced(opt.Plan)
			tr = t
			return r, err
		}); err != nil {
			return nil, err
		}
		rep.Trace = tr // nil when a concurrent flight computed instead
		return rep, nil
	}
	_, tr, err := ex.planner().RunTraced(opt.Plan)
	if err != nil {
		return nil, err
	}
	rep.Trace = tr
	return rep, nil
}

// PlanStats reports the planner's execution counters (plans by class,
// operators by kind) plus the plan-result cache's counters.
func (ex *Executor) PlanStats() plan.Stats {
	st := ex.planStats().Snapshot()
	if m := ex.resultMemo(); m != nil {
		ms := m.Stats()
		st.Cache = &plan.CacheStats{
			Hits:      ms.Hits,
			Misses:    ms.Misses,
			Coalesced: ms.Coalesced,
			Evictions: ms.Evictions,
			Entries:   ms.Entries,
		}
	}
	return st
}

// planStats returns the shared stats sink, creating it on first use. Every
// reader and writer goes through the once, so a stats read concurrent with
// the first query is race-free.
func (ex *Executor) planStats() *plan.ExecStats {
	ex.statsOnce.Do(func() { ex.stats = plan.NewStats() })
	return ex.stats
}

// planner assembles the plan executor over this executor's dependencies.
// The stats sink is shared across calls so counters accumulate.
func (ex *Executor) planner() *plan.Executor {
	return &plan.Executor{
		KG:        ex.KG,
		Trends:    ex.Trends,
		Miner:     ex.Miner,
		Searcher:  ex.Searcher,
		Model:     ex.Model,
		Linker:    ex.Linker,
		Analytics: ex.Analytics,
		TIndex:    ex.TIndex,
		Now:       ex.Now,
		Stats:     ex.planStats(),
	}
}

func (ex *Executor) now() time.Time {
	if ex.Now != nil {
		return ex.Now()
	}
	return time.Now()
}

// Lower compiles a parsed query into its logical plan. Every query class
// maps onto a small operator tree; see internal/plan for the operators.
func Lower(q Query) (*plan.Plan, error) {
	switch q.Class {
	case ClassTrending:
		return plan.TrendingPlan(q.Window, q.K), nil
	case ClassEntity:
		return plan.EntityPlan(q.Subject, q.Window, q.K), nil
	case ClassRelationship:
		return plan.RelationshipPlan(q.Subject, q.Object, q.Predicate, q.K, q.Window), nil
	case ClassPattern:
		return plan.PatternsPlan(q.K), nil
	case ClassFact:
		return plan.FactPlan(q.Subject, q.Predicate, q.Object, q.Window)
	case ClassDiff:
		return plan.DiffPlan(q.Subject, q.Window, q.WindowB), nil
	}
	return nil, fmt.Errorf("qa: unknown query class %q", q.Class)
}

// Classes returns the supported query classes with an example each — the
// five classes of the paper's Figure 5 plus the temporal diff class the
// planner adds.
func Classes() []string {
	out := []string{
		string(ClassTrending) + `: "What is trending?"`,
		string(ClassEntity) + `: "Tell me about DJI"`,
		string(ClassRelationship) + `: "How is Windermere related to DJI via acquired?"`,
		string(ClassPattern) + `: "What patterns are emerging?"`,
		string(ClassFact) + `: "Did Amazon acquire Aeros?"`,
		string(ClassDiff) + `: "What changed about DJI between 2015 and 2016?"`,
	}
	sort.Strings(out)
	return out
}
