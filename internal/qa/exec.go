package qa

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"nous/internal/analytics"
	"nous/internal/core"
	"nous/internal/disambig"
	"nous/internal/fgm"
	"nous/internal/linkpred"
	"nous/internal/pathsearch"
	"nous/internal/plan"
	"nous/internal/temporal"
	"nous/internal/trends"
)

// Answer is a structured query result plus a rendered text form.
type Answer struct {
	Class Class
	Text  string

	// Per-class payloads (only the one matching Class is populated).
	Trends   []trends.Trend
	Entity   *EntitySummary
	Paths    []ExplainedPath
	Patterns []fgm.Pattern
	Fact     *FactAnswer
	Diff     *DiffAnswer
}

// Payload types live in internal/plan (the layer that computes them); the
// aliases keep qa's public API stable.
type (
	// EntitySummary is the payload of "Tell me about X" (Fig 6).
	EntitySummary = plan.EntitySummary
	// ExplainedPath is one relationship explanation.
	ExplainedPath = plan.ExplainedPath
	// FactAnswer answers did/who/what fact queries.
	FactAnswer = plan.FactAnswer
	// DiffAnswer is the payload of a temporal diff query.
	DiffAnswer = plan.DiffAnswer
)

// Executor answers parsed queries by lowering them into logical plans
// (internal/plan) and running the plan executor — a thin compile-and-run
// shim over the query planner. Any dependency may be nil; execution degrades
// gracefully (e.g. no miner → pattern queries report emptiness).
type Executor struct {
	KG       *core.KG
	Trends   *trends.Detector
	Miner    *fgm.Miner
	Searcher *pathsearch.Searcher
	Model    *linkpred.Model
	Linker   *disambig.Linker
	// Analytics supplies epoch-memoized whole-graph artifacts (PageRank
	// importance). When nil, entity summaries report zero importance rather
	// than recomputing PageRank per request.
	Analytics *analytics.Cache
	// TIndex enables the plan operators that read the time-ordered edge
	// index directly: windowed trend backfill and whole-stream diffs. When
	// nil, trending degrades to the live detector anchored at the window's
	// end.
	TIndex *temporal.Index
	// Now supplies the query-time clock (defaults to time.Now).
	Now func() time.Time

	statsOnce sync.Once
	stats     *plan.ExecStats
}

// Ask parses and executes a question. Temporal qualifiers in the question
// ("last week", "in 2015") scope the answer; relative forms resolve against
// the executor's clock.
func (ex *Executor) Ask(question string) (Answer, error) {
	return ex.AskWindow(question, temporal.All())
}

// AskWindow is Ask with an additional caller-supplied window (e.g. the API's
// since/until parameters). It is intersected with any window parsed from the
// question itself (both windows of a diff question); the unbounded window
// leaves the question's own scope untouched.
func (ex *Executor) AskWindow(question string, w temporal.Window) (Answer, error) {
	q, err := ParseAt(question, ex.now())
	if err != nil {
		return Answer{}, err
	}
	q.Window = q.Window.Intersect(w)
	if q.Class == ClassDiff {
		q.WindowB = q.WindowB.Intersect(w)
	}
	return ex.Run(q)
}

// Run compiles a parsed query into a logical plan and executes it.
func (ex *Executor) Run(q Query) (Answer, error) {
	p, err := Lower(q)
	if err != nil {
		return Answer{}, err
	}
	r, err := ex.planner().Run(p)
	if err != nil {
		return Answer{}, err
	}
	return Answer{
		Class:    q.Class,
		Text:     r.Text,
		Trends:   r.Trends,
		Entity:   r.Entity,
		Paths:    r.Paths,
		Patterns: r.Patterns,
		Fact:     r.Fact,
		Diff:     r.Diff,
	}, nil
}

// Plan parses a question and lowers it into its logical plan without
// executing it — the compile half of Run, for explain-style inspection
// (GET /api/plan). The caller window intersects like AskWindow.
func (ex *Executor) Plan(question string, w temporal.Window) (*plan.Plan, error) {
	q, err := ParseAt(question, ex.now())
	if err != nil {
		return nil, err
	}
	q.Window = q.Window.Intersect(w)
	if q.Class == ClassDiff {
		q.WindowB = q.WindowB.Intersect(w)
	}
	return Lower(q)
}

// PlanStats reports the planner's execution counters (plans by class,
// operators by kind).
func (ex *Executor) PlanStats() plan.Stats {
	return ex.planStats().Snapshot()
}

// planStats returns the shared stats sink, creating it on first use. Every
// reader and writer goes through the once, so a stats read concurrent with
// the first query is race-free.
func (ex *Executor) planStats() *plan.ExecStats {
	ex.statsOnce.Do(func() { ex.stats = plan.NewStats() })
	return ex.stats
}

// planner assembles the plan executor over this executor's dependencies.
// The stats sink is shared across calls so counters accumulate.
func (ex *Executor) planner() *plan.Executor {
	return &plan.Executor{
		KG:        ex.KG,
		Trends:    ex.Trends,
		Miner:     ex.Miner,
		Searcher:  ex.Searcher,
		Model:     ex.Model,
		Linker:    ex.Linker,
		Analytics: ex.Analytics,
		TIndex:    ex.TIndex,
		Now:       ex.Now,
		Stats:     ex.planStats(),
	}
}

func (ex *Executor) now() time.Time {
	if ex.Now != nil {
		return ex.Now()
	}
	return time.Now()
}

// Lower compiles a parsed query into its logical plan. Every query class
// maps onto a small operator tree; see internal/plan for the operators.
func Lower(q Query) (*plan.Plan, error) {
	switch q.Class {
	case ClassTrending:
		return plan.TrendingPlan(q.Window, q.K), nil
	case ClassEntity:
		return plan.EntityPlan(q.Subject, q.Window, q.K), nil
	case ClassRelationship:
		return plan.RelationshipPlan(q.Subject, q.Object, q.Predicate, q.K, q.Window), nil
	case ClassPattern:
		return plan.PatternsPlan(q.K), nil
	case ClassFact:
		return plan.FactPlan(q.Subject, q.Predicate, q.Object, q.Window)
	case ClassDiff:
		return plan.DiffPlan(q.Subject, q.Window, q.WindowB), nil
	}
	return nil, fmt.Errorf("qa: unknown query class %q", q.Class)
}

// Classes returns the supported query classes with an example each — the
// five classes of the paper's Figure 5 plus the temporal diff class the
// planner adds.
func Classes() []string {
	out := []string{
		string(ClassTrending) + `: "What is trending?"`,
		string(ClassEntity) + `: "Tell me about DJI"`,
		string(ClassRelationship) + `: "How is Windermere related to DJI via acquired?"`,
		string(ClassPattern) + `: "What patterns are emerging?"`,
		string(ClassFact) + `: "Did Amazon acquire Aeros?"`,
		string(ClassDiff) + `: "What changed about DJI between 2015 and 2016?"`,
	}
	sort.Strings(out)
	return out
}
