package qa

import (
	"errors"
	"testing"
	"time"
)

// FuzzParseAt drives the question parser with arbitrary input: it must never
// panic, and every failure must match ErrParse (the sentinel the server's
// 400-vs-500 mapping depends on). Successful parses must carry a known class
// and internally consistent windows.
func FuzzParseAt(f *testing.F) {
	seeds := []string{
		"",
		"What is trending?",
		"What was trending in 2015?",
		"trending over the last 3 weeks",
		"Tell me about DJI",
		"Tell me about DJI between 2014 and 2016",
		"Tell me about DJI as of 2015-06-30",
		"Who is Frank Wang",
		"How is Windermere related to DJI via acquired?",
		"Explain the relationship between DJI and GoPro",
		"What patterns are emerging?",
		"Did Amazon acquire Aeros in 2015?",
		"What does DJI manufacture since 2015?",
		"Who acquired Aeros Labs?",
		"Where is DJI headquartered?",
		"What changed about DJI between 2015 and 2016?",
		"What changed between 2015-01-01 and 2015-06-01?",
		"How did DJI change between 2014 and 2016?",
		"What is new about DJI since 2015?",
		"Tell me about DJI between 2016 and 2015",    // inverted range
		"What changed about X between 2016 and 2015", // inverted diff
		"tell me about \x00\xff",
		"did did did did",
		"between 0000 and 9999",
		"what changed about between 2015 and 2016",
		"colorless green ideas sleep furiously",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	now := time.Date(2016, 3, 15, 12, 0, 0, 0, time.UTC)
	f.Fuzz(func(t *testing.T, question string) {
		q, err := ParseAt(question, now) // must not panic
		if err != nil {
			if !errors.Is(err, ErrParse) {
				t.Fatalf("ParseAt(%q) error %v does not match ErrParse", question, err)
			}
			return
		}
		switch q.Class {
		case ClassTrending, ClassEntity, ClassRelationship, ClassPattern, ClassFact, ClassDiff:
		default:
			t.Fatalf("ParseAt(%q) produced unknown class %q", question, q.Class)
		}
		if q.Class == ClassDiff {
			// Diff windows must be usable: neither zero-value-ambiguous side
			// may be inverted by construction.
			if q.Window.IsAll() && q.WindowB.IsAll() {
				t.Fatalf("ParseAt(%q) diff with two unbounded windows", question)
			}
		} else if q.WindowB != (Query{}).WindowB {
			t.Fatalf("ParseAt(%q) set WindowB on class %s", question, q.Class)
		}
	})
}
