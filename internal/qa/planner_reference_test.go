package qa

import (
	"fmt"
	"math"
	"reflect"
	"strings"
	"testing"
	"time"

	"nous/internal/disambig"
	"nous/internal/pathsearch"
	"nous/internal/temporal"
)

// legacyExec is the pre-planner executor, kept verbatim as a test fixture:
// one hard-wired code path per question class, exactly as it ran before the
// refactor onto internal/plan. The reference test below runs every legacy
// question class through both this fixture and the planner and asserts
// byte-identical answers.
type legacyExec struct {
	*Executor
}

func (ex legacyExec) run(q Query) (Answer, error) {
	switch q.Class {
	case ClassTrending:
		return ex.trending(q)
	case ClassEntity:
		return ex.entity(q)
	case ClassRelationship:
		return ex.relationship(q)
	case ClassPattern:
		return ex.patterns(q)
	case ClassFact:
		return ex.fact(q)
	}
	return Answer{}, fmt.Errorf("qa: unknown query class %q", q.Class)
}

func (ex legacyExec) windowRef(w temporal.Window) time.Time {
	if w.Bounded() && w.Until != math.MaxInt64 {
		return time.Unix(w.Until-1, 0)
	}
	return ex.now()
}

func (ex legacyExec) trending(q Query) (Answer, error) {
	a := Answer{Class: ClassTrending}
	if ex.Trends == nil {
		a.Text = "no trend detector attached"
		return a, nil
	}
	if !q.Window.IsEmpty() {
		a.Trends = ex.Trends.Trending(ex.windowRef(q.Window), q.K)
	}
	var b strings.Builder
	if q.Window.Bounded() {
		fmt.Fprintf(&b, "Trending in %s:\n", q.Window)
	} else {
		b.WriteString("Trending now:\n")
	}
	if len(a.Trends) == 0 {
		b.WriteString("  (nothing trending)\n")
	}
	for i, t := range a.Trends {
		fmt.Fprintf(&b, "  %2d. %-30s %-9s burst=%.1fx (%d mentions, baseline %.1f)\n",
			i+1, t.Name, t.Kind, t.Score, t.Current, t.Baseline)
	}
	a.Text = b.String()
	return a, nil
}

func (ex legacyExec) resolve(surface string) (string, bool) {
	if surface == "" {
		return "", false
	}
	if _, ok := ex.KG.Entity(surface); ok {
		return surface, true
	}
	if ex.Linker != nil {
		if r := ex.Linker.LinkOne(disambig.Mention{Surface: surface}); r.Entity != "" {
			return r.Entity, true
		}
	}
	cands := ex.KG.Candidates(surface)
	if len(cands) > 0 {
		return cands[0], true
	}
	return "", false
}

func (ex legacyExec) entity(q Query) (Answer, error) {
	a := Answer{Class: ClassEntity}
	name, ok := ex.resolve(q.Subject)
	if !ok {
		a.Text = fmt.Sprintf("I don't know anything about %q.", q.Subject)
		return a, nil
	}
	typ, _ := ex.KG.EntityType(name)
	sum := &EntitySummary{Name: name, Type: string(typ)}
	if id, ok := ex.KG.Entity(name); ok && ex.Analytics != nil {
		sum.Importance = ex.Analytics.WindowedImportance(id, q.Window)
	}
	facts := ex.KG.FactsAboutWindow(name, q.Window)
	if q.K > 0 && len(facts) > q.K {
		facts = facts[:q.K]
	}
	sum.Facts = facts
	if ex.Trends != nil && !q.Window.IsEmpty() {
		sum.Activity = ex.Trends.Series(name, ex.windowRef(q.Window), 8)
	}
	a.Entity = sum

	var b strings.Builder
	fmt.Fprintf(&b, "%s (%s)  importance=%.4f\n", sum.Name, sum.Type, sum.Importance)
	if q.Window.Bounded() {
		fmt.Fprintf(&b, "  window: %s\n", q.Window)
	}
	if len(sum.Activity) > 0 {
		fmt.Fprintf(&b, "  recent activity: %v\n", sum.Activity)
	}
	for _, f := range sum.Facts {
		marker := "extracted"
		if f.Curated {
			marker = "curated"
		}
		fmt.Fprintf(&b, "  %s -[%s]-> %s  (p=%.2f, %s", f.Subject, f.Predicate, f.Object, f.Confidence, marker)
		if f.Provenance.Source != "" {
			fmt.Fprintf(&b, ", src=%s", f.Provenance.Source)
		}
		b.WriteString(")\n")
	}
	a.Text = b.String()
	return a, nil
}

func (ex legacyExec) relationship(q Query) (Answer, error) {
	a := Answer{Class: ClassRelationship}
	sName, ok1 := ex.resolve(q.Subject)
	tName, ok2 := ex.resolve(q.Object)
	if !ok1 || !ok2 {
		a.Text = fmt.Sprintf("cannot resolve %q and/or %q", q.Subject, q.Object)
		return a, nil
	}
	if ex.Searcher == nil {
		a.Text = "no path searcher attached"
		return a, nil
	}
	src, _ := ex.KG.Entity(sName)
	dst, _ := ex.KG.Entity(tName)
	paths := ex.Searcher.TopK(src, dst, pathsearch.Options{K: q.K, MaxDepth: 4, Predicate: q.Predicate, Window: q.Window})
	var b strings.Builder
	fmt.Fprintf(&b, "Paths from %s to %s", sName, tName)
	if q.Predicate != "" {
		fmt.Fprintf(&b, " via %s", q.Predicate)
	}
	if q.Window.Bounded() {
		fmt.Fprintf(&b, " within %s", q.Window)
	}
	b.WriteString(":\n")
	if len(paths) == 0 {
		b.WriteString("  (no connecting path found)\n")
	}
	for _, p := range paths {
		ep := ExplainedPath{Coherence: p.Coherence}
		for i, e := range p.Edges {
			u := p.Vertices[i]
			v := p.Vertices[i+1]
			un, _ := ex.KG.EntityName(u)
			vn, _ := ex.KG.EntityName(v)
			arrow := fmt.Sprintf("%s -[%s]-> %s", un, e.Label, vn)
			if e.Src == v { // traversed against edge direction
				arrow = fmt.Sprintf("%s <-[%s]- %s", un, e.Label, vn)
			}
			ep.Hops = append(ep.Hops, arrow)
		}
		a.Paths = append(a.Paths, ep)
		fmt.Fprintf(&b, "  coherence=%.4f: %s\n", ep.Coherence, strings.Join(ep.Hops, " ; "))
	}
	a.Text = b.String()
	return a, nil
}

func (ex legacyExec) patterns(q Query) (Answer, error) {
	a := Answer{Class: ClassPattern}
	if ex.Miner == nil {
		a.Text = "no miner attached"
		return a, nil
	}
	ps := ex.Miner.ClosedPatterns()
	if q.K > 0 && len(ps) > q.K {
		ps = ps[:q.K]
	}
	a.Patterns = ps
	var b strings.Builder
	b.WriteString("Closed frequent patterns in the current window:\n")
	if len(ps) == 0 {
		b.WriteString("  (none above support threshold)\n")
	}
	for _, p := range ps {
		fmt.Fprintf(&b, "  support=%-4d %s\n", p.Support, p)
	}
	a.Text = b.String()
	return a, nil
}

func (ex legacyExec) fact(q Query) (Answer, error) {
	a := Answer{Class: ClassFact}
	fa := &FactAnswer{}
	a.Fact = fa
	var b strings.Builder

	switch {
	case q.Subject != "" && q.Object != "": // did S p O?
		s, ok1 := ex.resolve(q.Subject)
		o, ok2 := ex.resolve(q.Object)
		if !ok1 || !ok2 {
			a.Text = fmt.Sprintf("cannot resolve %q / %q", q.Subject, q.Object)
			return a, nil
		}
		fa.Known = ex.KG.HasFactWindow(s, q.Predicate, o, q.Window)
		if fa.Known {
			fmt.Fprintf(&b, "Yes: %s %s %s.\n", s, q.Predicate, o)
			for _, f := range ex.KG.FactsAboutWindow(s, q.Window) {
				if f.Predicate == q.Predicate && f.Object == o {
					src := f.Provenance.Source
					if f.Provenance.Sentence != "" {
						src += ": " + f.Provenance.Sentence
					}
					fa.Provenance = append(fa.Provenance, src)
					fmt.Fprintf(&b, "  evidence (p=%.2f): %s\n", f.Confidence, src)
				}
			}
		} else {
			fa.Plausible = 0.5
			if ex.Model != nil {
				fa.Plausible = ex.Model.Score(s, q.Predicate, o)
			}
			fmt.Fprintf(&b, "Not in the knowledge graph. Plausibility score: %.2f\n", fa.Plausible)
		}
	case q.Subject != "": // what does S p?
		s, ok := ex.resolve(q.Subject)
		if !ok {
			a.Text = fmt.Sprintf("cannot resolve %q", q.Subject)
			return a, nil
		}
		fa.Matches = ex.KG.ObjectsOfWindow(s, q.Predicate, q.Window)
		fa.Known = len(fa.Matches) > 0
		fmt.Fprintf(&b, "%s %s:\n", s, q.Predicate)
		for _, m := range fa.Matches {
			fmt.Fprintf(&b, "  %s (p=%.2f)\n", m.Name, m.Score)
		}
		if len(fa.Matches) == 0 {
			b.WriteString("  (no known facts)\n")
		}
	case q.Object != "": // who p O?
		o, ok := ex.resolve(q.Object)
		if !ok {
			a.Text = fmt.Sprintf("cannot resolve %q", q.Object)
			return a, nil
		}
		fa.Matches = ex.KG.SubjectsOfWindow(q.Predicate, o, q.Window)
		fa.Known = len(fa.Matches) > 0
		fmt.Fprintf(&b, "%s %s:\n", q.Predicate, o)
		for _, m := range fa.Matches {
			fmt.Fprintf(&b, "  %s (p=%.2f)\n", m.Name, m.Score)
		}
		if len(fa.Matches) == 0 {
			b.WriteString("  (no known facts)\n")
		}
	default:
		return a, fmt.Errorf("qa: fact query without arguments")
	}
	a.Text = b.String()
	return a, nil
}

// referenceQuestions is the legacy matrix: every question class of Fig 5,
// with and without temporal qualifiers, including unresolvable arguments and
// degraded paths. Bounded-window trending is exercised through the fixture
// comparison too: the reference executor has no temporal index attached, so
// the planner takes the same live-detector path the legacy code did.
var referenceQuestions = []string{
	"What is trending?",
	"What was trending last week?",
	"Tell me about DJI",
	"Tell me about Windermere",
	"Tell me about Windermere in 2015",
	"Tell me about DJI in 2014",
	"Tell me about Zorblatt",
	"How is Windermere related to DJI?",
	"How is Windermere related to DJI in 2015?",
	"How is Windermere related to DJI in 2014?",
	"How is Zorblatt related to DJI?",
	"Explain the relationship between DJI and GoPro",
	"What patterns are emerging?",
	"Did GoPro acquire Aeros Labs?",
	"Did GoPro acquire Aeros Labs in 2014?",
	"Did DJI acquire GoPro?",
	"What does DJI manufacture?",
	"What does DJI manufacture since 2015?",
	"Who acquired Aeros Labs?",
	"Where is DJI headquartered?",
}

// TestPlannerByteIdenticalToLegacyExecutor is the refactor's acceptance
// reference: every legacy question class answered through internal/plan must
// be byte-identical (text and structured payload) to the pre-refactor
// direct executor, across parsed questions, caller-supplied windows and
// degraded dependency sets.
func TestPlannerByteIdenticalToLegacyExecutor(t *testing.T) {
	ex := buildExecutor(t)
	legacy := legacyExec{ex}
	now := ex.Now()

	windows := []temporal.Window{
		temporal.All(),
		{Since: math.MinInt64 + 1, Until: math.MaxInt64 - 1},
		temporal.Between(time.Date(2015, 1, 1, 0, 0, 0, 0, time.UTC), time.Date(2016, 1, 1, 0, 0, 0, 0, time.UTC)),
		{Since: time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC).Unix(), Until: math.MaxInt64},
	}
	for _, question := range referenceQuestions {
		for _, w := range windows {
			q, err := ParseAt(question, now)
			if err != nil {
				t.Fatalf("ParseAt(%q): %v", question, err)
			}
			q.Window = q.Window.Intersect(w)

			want, err1 := legacy.run(q)
			got, err2 := ex.Run(q)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("%q (window %v): legacy err %v vs planner err %v", question, w, err1, err2)
			}
			if err1 != nil {
				continue
			}
			if want.Text != got.Text {
				t.Fatalf("%q (window %v) text diverges:\nlegacy:\n%q\nplanner:\n%q", question, w, want.Text, got.Text)
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("%q (window %v) structured answer diverges:\nlegacy:  %+v\nplanner: %+v", question, w, want, got)
			}
		}
	}
}

// TestPlannerByteIdenticalWhenDegraded re-runs the matrix with every
// optional dependency detached: the planner must degrade exactly like the
// legacy switch did.
func TestPlannerByteIdenticalWhenDegraded(t *testing.T) {
	full := buildExecutor(t)
	ex := &Executor{KG: full.KG, Now: full.Now} // no trends/miner/searcher/model/linker/analytics
	legacy := legacyExec{ex}
	now := ex.Now()

	for _, question := range referenceQuestions {
		q, err := ParseAt(question, now)
		if err != nil {
			t.Fatalf("ParseAt(%q): %v", question, err)
		}
		want, err1 := legacy.run(q)
		got, err2 := ex.Run(q)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("%q: legacy err %v vs planner err %v", question, err1, err2)
		}
		if err1 != nil {
			continue
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("%q degraded answer diverges:\nlegacy:  %+v\nplanner: %+v", question, want, got)
		}
	}
}

// TestPlannerUnknownClassAndEmptyFact pins the error contract Run shares
// with the legacy executor.
func TestPlannerUnknownClassAndEmptyFact(t *testing.T) {
	ex := buildExecutor(t)
	if _, err := ex.Run(Query{Class: Class("nonsense")}); err == nil {
		t.Fatal("unknown class accepted")
	}
	if _, err := ex.Run(Query{Class: ClassFact}); err == nil {
		t.Fatal("fact query without arguments accepted")
	}
}
