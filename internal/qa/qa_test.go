package qa

import (
	"strings"
	"testing"
	"time"

	"nous/internal/analytics"
	"nous/internal/core"
	"nous/internal/disambig"
	"nous/internal/fgm"
	"nous/internal/linkpred"
	"nous/internal/pathsearch"
	"nous/internal/trends"
)

func TestParseTrending(t *testing.T) {
	for _, s := range []string{
		"What is trending?",
		"what's trending",
		"Show me trending",
		"trending this week",
	} {
		q, err := Parse(s)
		if err != nil || q.Class != ClassTrending {
			t.Errorf("Parse(%q) = %+v, %v; want trending", s, q, err)
		}
	}
}

func TestParseEntity(t *testing.T) {
	cases := map[string]string{
		"Tell me about DJI":        "DJI",
		"tell me about DJI?":       "DJI",
		"Who is Frank Wang":        "Frank Wang",
		"What is the Phantom 3?":   "the Phantom 3",
		`Tell me about "Titan"`:    "Titan",
		"describe Windermere":      "Windermere",
		"summarize Apex Robotics?": "Apex Robotics",
	}
	for s, want := range cases {
		q, err := Parse(s)
		if err != nil || q.Class != ClassEntity || q.Subject != want {
			t.Errorf("Parse(%q) = %+v, %v; want entity %q", s, q, err, want)
		}
	}
}

func TestParseRelationship(t *testing.T) {
	q, err := Parse("How is Windermere related to DJI?")
	if err != nil || q.Class != ClassRelationship || q.Subject != "Windermere" || q.Object != "DJI" {
		t.Fatalf("Parse = %+v, %v", q, err)
	}
	q, err = Parse("Why is Windermere connected to Amazon via acquired?")
	if err != nil || q.Predicate != "acquired" {
		t.Fatalf("via-predicate lost: %+v, %v", q, err)
	}
	q, err = Parse("Explain the relationship between DJI and GoPro")
	if err != nil || q.Class != ClassRelationship || q.Subject != "DJI" || q.Object != "GoPro" {
		t.Fatalf("explain form: %+v, %v", q, err)
	}
}

func TestParsePattern(t *testing.T) {
	for _, s := range []string{
		"What patterns are emerging?",
		"show frequent patterns",
		"any new motifs in the stream?",
	} {
		q, err := Parse(s)
		if err != nil || q.Class != ClassPattern {
			t.Errorf("Parse(%q) = %+v, %v; want pattern", s, q, err)
		}
	}
}

func TestParseFact(t *testing.T) {
	q, err := Parse("Did DJI acquire Aeros?")
	if err != nil || q.Class != ClassFact || q.Subject != "DJI" || q.Predicate != "acquired" || q.Object != "Aeros" {
		t.Fatalf("did-form: %+v, %v", q, err)
	}
	q, err = Parse("Who acquired Aeros?")
	if err != nil || q.Class != ClassFact || q.Object != "Aeros" || q.Subject != "" {
		t.Fatalf("who-form: %+v, %v", q, err)
	}
	q, err = Parse("What does DJI manufacture?")
	if err != nil || q.Class != ClassFact || q.Subject != "DJI" || q.Predicate != "manufactures" {
		t.Fatalf("what-does-form: %+v, %v", q, err)
	}
	q, err = Parse("Where is DJI headquartered?")
	if err != nil || q.Predicate != "headquarteredIn" {
		t.Fatalf("where-form: %+v, %v", q, err)
	}
}

func TestParseRejectsGibberish(t *testing.T) {
	for _, s := range []string{"", "   ", "flarp blonk quux"} {
		if q, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) = %+v, want error", s, q)
		}
	}
}

// buildExecutor wires a small KG with everything attached.
func buildExecutor(t *testing.T) *Executor {
	t.Helper()
	kg := core.NewKG(nil)
	day := time.Date(2015, 6, 1, 0, 0, 0, 0, time.UTC)
	facts := []core.Triple{
		{Subject: "DJI", Predicate: "headquarteredIn", Object: "Shenzhen", Confidence: 1, Curated: true, Provenance: core.Provenance{Source: "kb"}},
		{Subject: "DJI", Predicate: "manufactures", Object: "Phantom 3", Confidence: 1, Curated: true, Provenance: core.Provenance{Source: "kb"}},
		{Subject: "Windermere", Predicate: "deploys", Object: "Phantom 3", Confidence: 0.8, Provenance: core.Provenance{Source: "wsj", Time: day, Sentence: "Windermere now uses the Phantom 3."}},
		{Subject: "Windermere", Predicate: "deploys", Object: "Phantom 3", Confidence: 0.7, Provenance: core.Provenance{Source: "web", Time: day}},
		{Subject: "GoPro", Predicate: "acquired", Object: "Aeros Labs", Confidence: 0.9, Provenance: core.Provenance{Source: "wsj", Time: day}},
	}
	det := trends.NewDetector(trends.DefaultConfig())
	kg.Subscribe(det.OnEvent)
	miner := fgm.NewMiner(fgm.Config{MaxEdges: 2, MinSupport: 2})
	kg.Subscribe(func(ev core.Event) {
		if ev.Kind == core.FactAdded {
			miner.Add(fgm.Edge{
				Src: int64(ev.Fact.Src), Dst: int64(ev.Fact.Dst),
				SrcLabel: string(ev.Fact.SubjectType), DstLabel: string(ev.Fact.ObjectType),
				Label: ev.Fact.Predicate, Time: ev.Fact.Provenance.Time.Unix(),
			})
		}
	})
	for _, f := range facts {
		if _, err := kg.AddFact(f); err != nil {
			t.Fatal(err)
		}
	}
	model := linkpred.Train(nil, linkpred.DefaultConfig())
	return &Executor{
		KG:        kg,
		Trends:    det,
		Miner:     miner,
		Searcher:  pathsearch.New(kg.Graph(), nil),
		Model:     model,
		Linker:    disambig.NewLinker(kg, disambig.DefaultConfig()),
		Analytics: analytics.New(kg),
		Now:       func() time.Time { return day },
	}
}

func TestExecTrending(t *testing.T) {
	ex := buildExecutor(t)
	a, err := ex.Ask("What is trending?")
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Trends) == 0 || !strings.Contains(a.Text, "Windermere") {
		t.Fatalf("trending answer: %s", a.Text)
	}
}

func TestExecEntity(t *testing.T) {
	ex := buildExecutor(t)
	a, err := ex.Ask("Tell me about DJI")
	if err != nil {
		t.Fatal(err)
	}
	if a.Entity == nil || a.Entity.Name != "DJI" {
		t.Fatalf("entity answer: %+v", a)
	}
	if len(a.Entity.Facts) < 2 {
		t.Fatalf("facts = %+v", a.Entity.Facts)
	}
	if !strings.Contains(a.Text, "Shenzhen") || !strings.Contains(a.Text, "curated") {
		t.Fatalf("text = %s", a.Text)
	}
}

func TestExecEntityUnknown(t *testing.T) {
	ex := buildExecutor(t)
	a, err := ex.Ask("Tell me about Zorblatt")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(a.Text, "don't know") {
		t.Fatalf("text = %s", a.Text)
	}
}

func TestExecRelationship(t *testing.T) {
	ex := buildExecutor(t)
	a, err := ex.Ask("How is Windermere related to DJI?")
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Paths) == 0 {
		t.Fatalf("no paths: %s", a.Text)
	}
	// Windermere -deploys-> Phantom 3 <-manufactures- DJI
	joined := strings.Join(a.Paths[0].Hops, " ")
	if !strings.Contains(joined, "Phantom 3") {
		t.Fatalf("path = %v", a.Paths[0].Hops)
	}
}

func TestExecPatterns(t *testing.T) {
	ex := buildExecutor(t)
	a, err := ex.Ask("What patterns are emerging?")
	if err != nil {
		t.Fatal(err)
	}
	// Windermere deploys Phantom 3 twice -> 1-edge pattern support 2.
	if len(a.Patterns) == 0 {
		t.Fatalf("no patterns: %s", a.Text)
	}
}

func TestExecFactKnown(t *testing.T) {
	ex := buildExecutor(t)
	a, err := ex.Ask("Did GoPro acquire Aeros Labs?")
	if err != nil {
		t.Fatal(err)
	}
	if a.Fact == nil || !a.Fact.Known {
		t.Fatalf("fact answer: %+v %s", a.Fact, a.Text)
	}
	if !strings.Contains(a.Text, "Yes") {
		t.Fatalf("text = %s", a.Text)
	}
}

func TestExecFactUnknownGivesPlausibility(t *testing.T) {
	ex := buildExecutor(t)
	a, err := ex.Ask("Did DJI acquire GoPro?")
	if err != nil {
		t.Fatal(err)
	}
	if a.Fact.Known {
		t.Fatal("invented a fact")
	}
	if a.Fact.Plausible <= 0 || a.Fact.Plausible >= 1 {
		t.Fatalf("plausibility = %v", a.Fact.Plausible)
	}
}

func TestExecFactLists(t *testing.T) {
	ex := buildExecutor(t)
	a, err := ex.Ask("What does DJI manufacture?")
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Fact.Matches) != 1 || a.Fact.Matches[0].Name != "Phantom 3" {
		t.Fatalf("matches = %+v", a.Fact.Matches)
	}
	a, err = ex.Ask("Who acquired Aeros Labs?")
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Fact.Matches) != 1 || a.Fact.Matches[0].Name != "GoPro" {
		t.Fatalf("matches = %+v", a.Fact.Matches)
	}
}

func TestExecDegradesWithoutDeps(t *testing.T) {
	kg := core.NewKG(nil)
	ex := &Executor{KG: kg}
	for _, q := range []string{"What is trending?", "What patterns are emerging?"} {
		a, err := ex.Ask(q)
		if err != nil {
			t.Fatalf("Ask(%q): %v", q, err)
		}
		if a.Text == "" {
			t.Fatalf("empty degraded answer for %q", q)
		}
	}
}

func TestClassesListsSix(t *testing.T) {
	// Fig 5's five classes plus the planner's temporal diff class.
	if got := Classes(); len(got) != 6 {
		t.Fatalf("Classes() = %v", got)
	}
}

// TestEntityImportanceFromAnalytics pins the entity summary's importance to
// the shared epoch-memoized PageRank: with a cache attached the score is
// the cached rank; without one the executor degrades to zero instead of
// recomputing PageRank inline.
func TestEntityImportanceFromAnalytics(t *testing.T) {
	ex := buildExecutor(t)
	a, err := ex.Ask("Tell me about DJI")
	if err != nil {
		t.Fatal(err)
	}
	if a.Entity == nil || a.Entity.Importance <= 0 {
		t.Fatalf("importance not served from analytics: %+v", a.Entity)
	}
	id, _ := ex.KG.Entity("DJI")
	if want := ex.Analytics.Importance(id); a.Entity.Importance != want {
		t.Fatalf("importance = %v, want cached rank %v", a.Entity.Importance, want)
	}

	ex.Analytics = nil
	a, err = ex.Ask("Tell me about DJI")
	if err != nil {
		t.Fatal(err)
	}
	if a.Entity == nil || a.Entity.Importance != 0 {
		t.Fatalf("without analytics, importance = %+v, want 0", a.Entity)
	}
}
