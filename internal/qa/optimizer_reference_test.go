package qa

import (
	"reflect"
	"testing"
	"time"

	"nous/internal/core"
	"nous/internal/temporal"
)

// buildWindowedExecutor is buildExecutor with the KG's temporal index
// attached — the configuration where the optimizer's window statistics,
// trend-scan skipping and the plan-result cache are all live.
func buildWindowedExecutor(t *testing.T) *Executor {
	t.Helper()
	ex := buildExecutor(t)
	ex.TIndex = ex.KG.TemporalIndex()
	return ex
}

// optimizerQuestions extends the legacy reference matrix with the planner's
// own classes: temporal diffs (always cacheable) and bounded trending
// (cacheable through the backfill path), plus windows the histogram proves
// empty (the TrendScan skip rewrite) and diffs whose two windows differ in
// size (the Diff reorder rewrite).
var optimizerQuestions = []string{
	"What changed about DJI between 2015 and 2016?",
	"What changed about Windermere between 2014 and 2015?",
	"What changed between 2014 and 2016?",
	"What changed about DJI between 2010 and 2011?", // both windows empty
	"How did GoPro change between 2015 and 2016?",
	"What was trending in 2015?",
	"What was trending in 2011?", // histogram-provably empty window
	"What was trending last week?",
	"Tell me about DJI in 2014",
	"Tell me about Windermere in 2015",
	"What does DJI manufacture since 2015?",
	"Did GoPro acquire Aeros Labs in 2014?",
	"How is Windermere related to DJI in 2015?",
}

// TestOptimizedPlansByteIdenticalToReference is the perf work's acceptance
// reference: for every question, the optimized plan — and, on the second
// run, the plan cache — must produce answers byte-identical to the
// unoptimized reference plan executed directly, with no cache in between.
func TestOptimizedPlansByteIdenticalToReference(t *testing.T) {
	ex := buildWindowedExecutor(t)
	now := ex.Now()

	corpus := append(append([]string{}, referenceQuestions...), optimizerQuestions...)
	for _, question := range corpus {
		q, err := ParseAt(question, now)
		if err != nil {
			t.Fatalf("ParseAt(%q): %v", question, err)
		}
		p, err := Lower(q)
		if err != nil {
			t.Fatalf("Lower(%q): %v", question, err)
		}
		// Reference: the unoptimized plan, executed directly.
		want, err := ex.planner().Run(p)
		if err != nil {
			t.Fatalf("reference %q: %v", question, err)
		}
		// Production: optimized, and cached when eligible. Run twice — the
		// second run of a cacheable question is served from the plan cache.
		for pass := 1; pass <= 2; pass++ {
			got, err := ex.runPlan(p)
			if err != nil {
				t.Fatalf("optimized %q (pass %d): %v", question, pass, err)
			}
			if want.Text != got.Text {
				t.Fatalf("%q (pass %d) text diverges:\nreference:\n%q\noptimized:\n%q", question, pass, want.Text, got.Text)
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("%q (pass %d) structured answer diverges:\nreference: %+v\noptimized: %+v", question, pass, want, got)
			}
		}
	}

	st := ex.PlanStats()
	if st.Cache == nil {
		t.Fatal("PlanStats.Cache not populated")
	}
	if st.Cache.Hits == 0 {
		t.Fatalf("no plan-cache hits across the corpus: %+v", *st.Cache)
	}
	if st.Cache.Entries == 0 {
		t.Fatalf("no plan-cache entries after cacheable questions: %+v", *st.Cache)
	}
}

// TestPlanCacheHitAndEpochInvalidation pins the cache's contract end to end:
// a repeated diff at an unchanged epoch is served from the cache, and a
// graph mutation (which advances the epoch) both invalidates the entry and
// shows up in the next answer.
func TestPlanCacheHitAndEpochInvalidation(t *testing.T) {
	ex := buildWindowedExecutor(t)
	const question = "What changed about DJI between 2015 and 2016?"

	ask := func() Answer {
		t.Helper()
		a, err := ex.Ask(question)
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	first := ask()
	base := ex.PlanStats().Cache
	if base == nil || base.Misses == 0 {
		t.Fatalf("first ask did not populate the cache: %+v", base)
	}
	second := ask()
	st := ex.PlanStats().Cache
	if st.Hits != base.Hits+1 {
		t.Fatalf("repeat at unchanged epoch: hits %d -> %d, want +1", base.Hits, st.Hits)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatal("cached answer diverges from computed answer")
	}

	// Mutate: the epoch advances, the cached entry goes stale, and the
	// recomputed diff now includes the new 2015 fact.
	if _, err := ex.KG.AddFact(core.Triple{
		Subject: "DJI", Predicate: "acquired", Object: "Aeros Labs", Confidence: 0.9,
		Provenance: core.Provenance{Source: "wsj", Time: time.Date(2015, 7, 1, 0, 0, 0, 0, time.UTC)},
	}); err != nil {
		t.Fatal(err)
	}
	third := ask()
	st2 := ex.PlanStats().Cache
	if st2.Misses != st.Misses+1 {
		t.Fatalf("ask after mutation: misses %d -> %d, want +1 (stale entry served?)", st.Misses, st2.Misses)
	}
	if reflect.DeepEqual(second, third) {
		t.Fatal("answer unchanged after a mutation inside the diff window")
	}
	if third.Diff == nil || len(third.Diff.Removed) == 0 {
		t.Fatalf("recomputed diff missing the new 2015-only fact: %+v", third.Diff)
	}
}

// TestExplainQueryReportsRowsAndCacheState pins the executed-explain
// contract behind /api/plan: a cold explain carries actual_rows and warms
// the cache; a second explain of the same question reports Cached with no
// actual_rows (nothing executed).
func TestExplainQueryReportsRowsAndCacheState(t *testing.T) {
	ex := buildWindowedExecutor(t)
	const question = "What changed about DJI between 2015 and 2016?"

	cold, err := ex.ExplainQuery(question, temporal.All())
	if err != nil {
		t.Fatal(err)
	}
	if !cold.Cacheable || cold.Cached {
		t.Fatalf("cold explain: cacheable=%v cached=%v, want true/false", cold.Cacheable, cold.Cached)
	}
	if cold.Trace == nil {
		t.Fatal("cold explain carries no trace")
	}
	desc := cold.Describe()
	if desc.EstRows == nil || desc.ActualRows == nil {
		t.Fatalf("cold explain root missing rows: est=%v actual=%v", desc.EstRows, desc.ActualRows)
	}

	warm, err := ex.ExplainQuery(question, temporal.All())
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Cached {
		t.Fatal("second explain did not observe the warmed cache")
	}
	if warm.Trace != nil {
		t.Fatal("cached explain executed anyway (non-nil trace)")
	}
	wdesc := warm.Describe()
	if wdesc.ActualRows != nil {
		t.Fatal("cached explain reports actual_rows")
	}
	if wdesc.EstRows == nil {
		t.Fatal("cached explain lost est_rows")
	}

	// The explain warmed the cache: the real query is now a hit.
	before := ex.PlanStats().Cache.Hits
	if _, err := ex.Ask(question); err != nil {
		t.Fatal(err)
	}
	if after := ex.PlanStats().Cache.Hits; after != before+1 {
		t.Fatalf("ask after explain: hits %d -> %d, want +1", before, after)
	}

	// Non-cacheable classes still explain with actual rows.
	ent, err := ex.ExplainQuery("Tell me about DJI", temporal.All())
	if err != nil {
		t.Fatal(err)
	}
	if ent.Cacheable || ent.Cached {
		t.Fatalf("entity explain: cacheable=%v cached=%v, want false/false", ent.Cacheable, ent.Cached)
	}
	if ent.Trace == nil {
		t.Fatal("entity explain carries no trace")
	}
}
