// Package qa implements NOUS's question-answering front end: the five
// classes of natural-language-like queries of Figure 5 — trending, entity,
// relationship (explanatory), pattern and fact queries — parsed from text
// and executed against the dynamic KG, the trend detector, the streaming
// miner, the coherence path search and the link-prediction model.
package qa

import (
	"fmt"
	"regexp"
	"strings"
)

// Class is one of the five query classes.
type Class string

// The five query classes (Fig 5).
const (
	ClassTrending     Class = "trending"
	ClassEntity       Class = "entity"
	ClassRelationship Class = "relationship"
	ClassPattern      Class = "pattern"
	ClassFact         Class = "fact"
)

// Query is a parsed question.
type Query struct {
	Class Class
	// Entity arguments (surface forms; resolution happens at execution).
	Subject string
	Object  string
	// Predicate constraint for relationship/fact queries (ontology name).
	Predicate string
	// K bounds result size where applicable.
	K int
}

// verbToPredicate maps question verbs to ontology predicates.
var verbToPredicate = map[string]string{
	"acquire": "acquired", "acquired": "acquired", "buy": "acquired", "bought": "acquired",
	"manufacture": "manufactures", "manufactures": "manufactures", "make": "manufactures", "makes": "manufactures",
	"develop": "develops", "develops": "develops",
	"deploy": "deploys", "deploys": "deploys", "use": "deploys", "uses": "deploys", "employ": "deploys",
	"invest": "invests", "invests": "invests",
	"partner": "partnersWith", "partners": "partnersWith",
	"regulate": "regulates", "regulates": "regulates",
	"ban": "bans", "banned": "bans", "bans": "bans",
	"approve": "approves", "approved": "approves", "approves": "approves",
	"cite": "cites", "cites": "cites",
	"author": "authorOf", "authored": "authorOf", "wrote": "authorOf",
	"found": "foundedBy", "founded": "foundedBy",
	"supply": "suppliesTo", "supplies": "suppliesTo",
	"compete": "competesWith", "competes": "competesWith",
	"hire": "worksFor", "hired": "worksFor",
}

var (
	reTrending = regexp.MustCompile(`(?i)^\s*(?:what(?:'s| is)?\s+)?(?:show\s+(?:me\s+)?)?trending\b|^\s*what\s+is\s+trending`)
	reEntity   = regexp.MustCompile(`(?i)^\s*(?:tell me about|who is|what is|describe|summarize)\s+(.+?)\s*\??\s*$`)
	reRelate   = regexp.MustCompile(`(?i)^\s*(?:how|why)\s+(?:is|are|was|were|does|do|did|would|may|might)?\s*(.+?)\s+(?:related|connected|linked|relate|connect)\s*(?:to)?\s+(.+?)(?:\s+via\s+(\w+))?\s*\??\s*$`)
	reExplain  = regexp.MustCompile(`(?i)^\s*explain\s+(?:the\s+)?(?:relationship|connection|link)\s+between\s+(.+?)\s+and\s+(.+?)(?:\s+via\s+(\w+))?\s*\??\s*$`)
	rePattern  = regexp.MustCompile(`(?i)\b(patterns?|motifs?)\b`)
	reDid      = regexp.MustCompile(`(?i)^\s*(?:did|does|has|have|is|was)\s+(.+?)\s+(\w+)\s+(?:the\s+)?(.+?)\s*\??\s*$`)
	reWho      = regexp.MustCompile(`(?i)^\s*(?:who|what|which\s+\w+)\s+(\w+)\s+(?:the\s+)?(.+?)\s*\??\s*$`)
	reWhatDoes = regexp.MustCompile(`(?i)^\s*(?:what|whom|who)\s+(?:does|did|do|has|have)\s+(.+?)\s+(\w+)\s*\??\s*$`)
	reWhere    = regexp.MustCompile(`(?i)^\s*where\s+is\s+(.+?)\s+(?:headquartered|based|located)\s*\??\s*$`)
)

// Parse classifies a question into one of the five classes. It returns an
// error for text it cannot classify.
func Parse(question string) (Query, error) {
	q := strings.TrimSpace(question)
	if q == "" {
		return Query{}, fmt.Errorf("qa: empty question")
	}

	if reTrending.MatchString(q) {
		return Query{Class: ClassTrending, K: 10}, nil
	}
	if rePattern.MatchString(q) {
		return Query{Class: ClassPattern, K: 10}, nil
	}
	if m := reRelate.FindStringSubmatch(q); m != nil {
		return Query{Class: ClassRelationship, Subject: cleanArg(m[1]), Object: cleanArg(m[2]), Predicate: strings.TrimSpace(m[3]), K: 3}, nil
	}
	if m := reExplain.FindStringSubmatch(q); m != nil {
		return Query{Class: ClassRelationship, Subject: cleanArg(m[1]), Object: cleanArg(m[2]), Predicate: strings.TrimSpace(m[3]), K: 3}, nil
	}
	if m := reWhere.FindStringSubmatch(q); m != nil {
		return Query{Class: ClassFact, Subject: cleanArg(m[1]), Predicate: "headquarteredIn"}, nil
	}
	if m := reDid.FindStringSubmatch(q); m != nil {
		if pred, ok := verbToPredicate[strings.ToLower(m[2])]; ok {
			return Query{Class: ClassFact, Subject: cleanArg(m[1]), Predicate: pred, Object: cleanArg(m[3])}, nil
		}
	}
	if m := reWhatDoes.FindStringSubmatch(q); m != nil {
		if pred, ok := verbToPredicate[strings.ToLower(m[2])]; ok {
			return Query{Class: ClassFact, Subject: cleanArg(m[1]), Predicate: pred}, nil
		}
	}
	if m := reWho.FindStringSubmatch(q); m != nil {
		if pred, ok := verbToPredicate[strings.ToLower(m[1])]; ok {
			return Query{Class: ClassFact, Predicate: pred, Object: cleanArg(m[2])}, nil
		}
	}
	if m := reEntity.FindStringSubmatch(q); m != nil {
		return Query{Class: ClassEntity, Subject: cleanArg(m[1]), K: 10}, nil
	}
	return Query{}, fmt.Errorf("qa: cannot classify question %q", question)
}

func cleanArg(s string) string {
	s = strings.TrimSpace(s)
	s = strings.Trim(s, `"'`)
	s = strings.TrimSuffix(s, "?")
	s = strings.TrimSuffix(s, ".")
	return strings.TrimSpace(s)
}
