// Package qa implements NOUS's question-answering front end: the five
// classes of natural-language-like queries of Figure 5 — trending, entity,
// relationship (explanatory), pattern and fact queries — parsed from text
// and executed against the dynamic KG, the trend detector, the streaming
// miner, the coherence path search and the link-prediction model.
package qa

import (
	"errors"
	"fmt"
	"math"
	"regexp"
	"strconv"
	"strings"
	"time"

	"nous/internal/temporal"
)

// ErrParse marks questions that cannot be parsed or whose temporal
// qualifiers are invalid — client errors, as opposed to execution failures.
// Match with errors.Is.
var ErrParse = errors.New("qa: unparseable question")

// parseError is an error that errors.Is-matches ErrParse while keeping a
// specific message.
type parseError struct{ msg string }

func (e *parseError) Error() string        { return e.msg }
func (e *parseError) Is(target error) bool { return target == ErrParse }

func parseErrf(format string, args ...any) error {
	return &parseError{msg: fmt.Sprintf(format, args...)}
}

// Class is one of the supported query classes.
type Class string

// The five query classes of Fig 5, plus the temporal diff class the query
// planner adds ("what changed about X between 2015 and 2016").
const (
	ClassTrending     Class = "trending"
	ClassEntity       Class = "entity"
	ClassRelationship Class = "relationship"
	ClassPattern      Class = "pattern"
	ClassFact         Class = "fact"
	ClassDiff         Class = "diff"
)

// Query is a parsed question.
type Query struct {
	Class Class
	// Entity arguments (surface forms; resolution happens at execution).
	Subject string
	Object  string
	// Predicate constraint for relationship/fact queries (ontology name).
	Predicate string
	// K bounds result size where applicable.
	K int
	// Window is the temporal scope parsed from qualifiers such as "last
	// week", "in 2015", "between 2014 and 2016" or "as of 2015-06-30". The
	// zero Window is unbounded (timeless query). Diff queries use it as the
	// first ("before") window.
	Window temporal.Window
	// WindowB is the second ("after") window of a diff query; unused (zero)
	// for every other class.
	WindowB temporal.Window
}

// verbToPredicate maps question verbs to ontology predicates.
var verbToPredicate = map[string]string{
	"acquire": "acquired", "acquired": "acquired", "buy": "acquired", "bought": "acquired",
	"manufacture": "manufactures", "manufactures": "manufactures", "make": "manufactures", "makes": "manufactures",
	"develop": "develops", "develops": "develops",
	"deploy": "deploys", "deploys": "deploys", "use": "deploys", "uses": "deploys", "employ": "deploys",
	"invest": "invests", "invests": "invests",
	"partner": "partnersWith", "partners": "partnersWith",
	"regulate": "regulates", "regulates": "regulates",
	"ban": "bans", "banned": "bans", "bans": "bans",
	"approve": "approves", "approved": "approves", "approves": "approves",
	"cite": "cites", "cites": "cites",
	"author": "authorOf", "authored": "authorOf", "wrote": "authorOf",
	"found": "foundedBy", "founded": "foundedBy",
	"supply": "suppliesTo", "supplies": "suppliesTo",
	"compete": "competesWith", "competes": "competesWith",
	"hire": "worksFor", "hired": "worksFor",
}

var (
	reTrending = regexp.MustCompile(`(?i)^\s*(?:what(?:'s| is| was)?\s+)?(?:show\s+(?:me\s+)?)?trending\b|^\s*what\s+(?:is|was)\s+trending`)
	reEntity   = regexp.MustCompile(`(?i)^\s*(?:tell me about|who is|what is|describe|summarize)\s+(.+?)\s*\??\s*$`)
	reRelate   = regexp.MustCompile(`(?i)^\s*(?:how|why)\s+(?:is|are|was|were|does|do|did|would|may|might)?\s*(.+?)\s+(?:related|connected|linked|relate|connect)\s*(?:to)?\s+(.+?)(?:\s+via\s+(\w+))?\s*\??\s*$`)
	reExplain  = regexp.MustCompile(`(?i)^\s*explain\s+(?:the\s+)?(?:relationship|connection|link)\s+between\s+(.+?)\s+and\s+(.+?)(?:\s+via\s+(\w+))?\s*\??\s*$`)
	rePattern  = regexp.MustCompile(`(?i)\b(patterns?|motifs?)\b`)
	reDid      = regexp.MustCompile(`(?i)^\s*(?:did|does|has|have|is|was)\s+(.+?)\s+(\w+)\s+(?:the\s+)?(.+?)\s*\??\s*$`)
	reWho      = regexp.MustCompile(`(?i)^\s*(?:who|what|which\s+\w+)\s+(\w+)\s+(?:the\s+)?(.+?)\s*\??\s*$`)
	reWhatDoes = regexp.MustCompile(`(?i)^\s*(?:what|whom|who)\s+(?:does|did|do|has|have)\s+(.+?)\s+(\w+)\s*\??\s*$`)
	reWhere    = regexp.MustCompile(`(?i)^\s*where\s+is\s+(.+?)\s+(?:headquartered|based|located)\s*\??\s*$`)
)

// Temporal qualifier patterns. A date is a bare year or an ISO day; the
// qualifier is stripped from the question before classification, so
// "Tell me about DJI last week" classifies exactly like "Tell me about DJI".
const reDate = `(\d{4}(?:-\d{2}-\d{2})?)`

// Diff question forms. They are matched against the raw question *before*
// the single-window qualifier extraction, because a diff carries two
// temporal arguments ("between 2015 and 2016" = compare the two periods,
// not one merged window).
var (
	reDiffBetween = regexp.MustCompile(`(?i)^\s*what(?:\s+has\s+changed|\s+changed|\s+is\s+new|'s\s+new|\s+is\s+different|'s\s+different)\s*(?:about\s+(.+?))?\s+between\s+` + reDate + `\s+and\s+` + reDate + `\s*\??\s*$`)
	reDiffHow     = regexp.MustCompile(`(?i)^\s*how\s+(?:did|has)\s+(.+?)\s+changed?\s+between\s+` + reDate + `\s+and\s+` + reDate + `\s*\??\s*$`)
	reDiffSince   = regexp.MustCompile(`(?i)^\s*what(?:\s+has\s+changed|\s+changed|\s+is\s+new|'s\s+new)\s*(?:about\s+(.+?))?\s+since\s+` + reDate + `\s*\??\s*$`)
)

var (
	reBetween  = regexp.MustCompile(`(?i)\b(?:between|from)\s+` + reDate + `\s+(?:and|to)\s+` + reDate + `\b`)
	reAsOf     = regexp.MustCompile(`(?i)\bas\s+of\s+` + reDate + `\b`)
	reSince    = regexp.MustCompile(`(?i)\bsince\s+` + reDate + `\b`)
	reBefore   = regexp.MustCompile(`(?i)\bbefore\s+` + reDate + `\b`)
	reInYear   = regexp.MustCompile(`(?i)\b(?:in|during)\s+(\d{4})\b`)
	reLastUnit = regexp.MustCompile(`(?i)\b(?:in\s+|over\s+|during\s+)?the\s+(?:last|past)\s+(day|week|month|year)\b|\b(?:last|past)\s+(day|week|month|year)\b`)
	reLastN    = regexp.MustCompile(`(?i)\b(?:in\s+|over\s+|during\s+)?the\s+(?:last|past)\s+(\d+)\s+(days?|weeks?|months?|years?)\b|\b(?:last|past)\s+(\d+)\s+(days?|weeks?|months?|years?)\b`)
)

// parseDate resolves a qualifier date. A bare year resolves to Jan 1 of that
// year; end selects the exclusive end of the period (the next year / day).
func parseDate(s string, end bool) (time.Time, error) {
	if len(s) == 4 {
		y, err := strconv.Atoi(s)
		if err != nil {
			return time.Time{}, parseErrf("qa: bad year %q", s)
		}
		if end {
			y++
		}
		return time.Date(y, 1, 1, 0, 0, 0, 0, time.UTC), nil
	}
	t, err := time.Parse("2006-01-02", s)
	if err != nil {
		return time.Time{}, parseErrf("qa: bad date %q (want YYYY or YYYY-MM-DD)", s)
	}
	if end {
		t = t.AddDate(0, 0, 1)
	}
	return t, nil
}

// extractWindow finds at most one temporal qualifier in the question,
// resolves it against now, and returns the question with the qualifier
// removed. Questions without a qualifier return the unbounded window.
func extractWindow(q string, now time.Time) (string, temporal.Window, error) {
	strip := func(loc []int) string {
		rest := q[:loc[0]] + " " + q[loc[1]:]
		return strings.Join(strings.Fields(rest), " ")
	}
	pick := func(groups []string) string {
		for _, g := range groups {
			if g != "" {
				return g
			}
		}
		return ""
	}
	if m := reBetween.FindStringSubmatchIndex(q); m != nil {
		a, errA := parseDate(q[m[2]:m[3]], false)
		b, errB := parseDate(q[m[4]:m[5]], true)
		if errA != nil {
			return q, temporal.Window{}, errA
		}
		if errB != nil {
			return q, temporal.Window{}, errB
		}
		if !a.Before(b) {
			return q, temporal.Window{}, parseErrf("qa: empty time range %q to %q", q[m[2]:m[3]], q[m[4]:m[5]])
		}
		return strip(m[:2]), temporal.Between(a, b), nil
	}
	if m := reAsOf.FindStringSubmatchIndex(q); m != nil {
		t, err := parseDate(q[m[2]:m[3]], true)
		if err != nil {
			return q, temporal.Window{}, err
		}
		return strip(m[:2]), temporal.UntilTime(t), nil
	}
	if m := reSince.FindStringSubmatchIndex(q); m != nil {
		t, err := parseDate(q[m[2]:m[3]], false)
		if err != nil {
			return q, temporal.Window{}, err
		}
		return strip(m[:2]), temporal.SinceTime(t), nil
	}
	if m := reBefore.FindStringSubmatchIndex(q); m != nil {
		t, err := parseDate(q[m[2]:m[3]], false)
		if err != nil {
			return q, temporal.Window{}, err
		}
		return strip(m[:2]), temporal.Window{Since: math.MinInt64, Until: t.Unix()}, nil
	}
	if m := reInYear.FindStringSubmatchIndex(q); m != nil {
		a, _ := parseDate(q[m[2]:m[3]], false)
		b, _ := parseDate(q[m[2]:m[3]], true)
		return strip(m[:2]), temporal.Between(a, b), nil
	}
	group := func(m []int, i int) string {
		if m[2*i] < 0 {
			return ""
		}
		return q[m[2*i]:m[2*i+1]]
	}
	if m := reLastN.FindStringSubmatchIndex(q); m != nil {
		n, err := strconv.Atoi(pick([]string{group(m, 1), group(m, 3)}))
		if err != nil || n <= 0 {
			return q, temporal.Window{}, parseErrf("qa: bad duration in %q", q[m[0]:m[1]])
		}
		unit := strings.TrimSuffix(strings.ToLower(pick([]string{group(m, 2), group(m, 4)})), "s")
		return strip(m[:2]), lastWindow(now, n, unit), nil
	}
	if m := reLastUnit.FindStringSubmatchIndex(q); m != nil {
		unit := strings.ToLower(pick([]string{group(m, 1), group(m, 2)}))
		return strip(m[:2]), lastWindow(now, 1, unit), nil
	}
	return q, temporal.Window{}, nil
}

// lastWindow is the window of the last n days/weeks/months/years ending now
// (inclusive of now). Endpoints are quantized to the minute so repeated
// relative questions under a ticking clock share one (epoch, window) cache
// key instead of producing a fresh windowed-PageRank artifact every second.
func lastWindow(now time.Time, n int, unit string) temporal.Window {
	var since time.Time
	switch unit {
	case "day":
		since = now.AddDate(0, 0, -n)
	case "week":
		since = now.AddDate(0, 0, -7*n)
	case "month":
		since = now.AddDate(0, -n, 0)
	default: // year
		since = now.AddDate(-n, 0, 0)
	}
	return temporal.Window{Since: floorMinute(since.Unix()), Until: floorMinute(now.Unix()) + 60}
}

// floorMinute rounds a unix timestamp down to the minute (floor division,
// correct for pre-1970 values too).
func floorMinute(ts int64) int64 {
	m := ts / 60
	if ts%60 != 0 && ts < 0 {
		m--
	}
	return m * 60
}

// Parse classifies a question into one of the five classes, resolving
// relative temporal qualifiers against the wall clock. It returns an error
// (matching ErrParse) for text it cannot classify.
func Parse(question string) (Query, error) {
	return ParseAt(question, time.Now())
}

// ParseAt is Parse with an explicit reference time for relative qualifiers
// ("last week" is resolved against now).
func ParseAt(question string, now time.Time) (Query, error) {
	q := strings.TrimSpace(question)
	if q == "" {
		return Query{}, parseErrf("qa: empty question")
	}
	// Diff questions first: they carry two temporal arguments, which the
	// single-window qualifier stripping below would merge into one.
	if dq, ok, err := parseDiff(q); err != nil {
		return Query{}, err
	} else if ok {
		return dq, nil
	}
	q, window, err := extractWindow(q, now)
	if err != nil {
		return Query{}, err
	}
	parsed, err := classify(q, question)
	if err != nil {
		return Query{}, err
	}
	parsed.Window = window
	return parsed, nil
}

// periodOf resolves one diff date argument to the window it denotes: a bare
// year covers that year, an ISO day covers that day.
func periodOf(s string) (temporal.Window, error) {
	a, err := parseDate(s, false)
	if err != nil {
		return temporal.Window{}, err
	}
	b, err := parseDate(s, true)
	if err != nil {
		return temporal.Window{}, err
	}
	return temporal.Between(a, b), nil
}

// parseDiff recognizes the temporal diff question forms:
//
//	What changed (about X)? between A and B   — compare period A to period B
//	How did X change between A and B
//	What is new (about X)? since D            — compare (-inf, D) to [D, +inf)
//
// ok is false when the question is not a diff form at all.
func parseDiff(q string) (Query, bool, error) {
	var entity, dateA, dateB string
	if m := reDiffBetween.FindStringSubmatch(q); m != nil {
		entity, dateA, dateB = m[1], m[2], m[3]
	} else if m := reDiffHow.FindStringSubmatch(q); m != nil {
		entity, dateA, dateB = m[1], m[2], m[3]
	} else if m := reDiffSince.FindStringSubmatch(q); m != nil {
		t, err := parseDate(m[2], false)
		if err != nil {
			return Query{}, true, err
		}
		return Query{
			Class:   ClassDiff,
			Subject: cleanArg(m[1]),
			Window:  temporal.UntilTime(t),
			WindowB: temporal.SinceTime(t),
		}, true, nil
	} else {
		return Query{}, false, nil
	}

	wa, err := periodOf(dateA)
	if err != nil {
		return Query{}, true, err
	}
	wb, err := periodOf(dateB)
	if err != nil {
		return Query{}, true, err
	}
	if wa.Since >= wb.Since {
		return Query{}, true, parseErrf("qa: diff range %q to %q is not increasing", dateA, dateB)
	}
	return Query{Class: ClassDiff, Subject: cleanArg(entity), Window: wa, WindowB: wb}, true, nil
}

// classify maps the (qualifier-stripped) question onto one of the five
// classes. original is the untouched question, used in error messages.
func classify(q, original string) (Query, error) {

	if reTrending.MatchString(q) {
		return Query{Class: ClassTrending, K: 10}, nil
	}
	if rePattern.MatchString(q) {
		return Query{Class: ClassPattern, K: 10}, nil
	}
	if m := reRelate.FindStringSubmatch(q); m != nil {
		return Query{Class: ClassRelationship, Subject: cleanArg(m[1]), Object: cleanArg(m[2]), Predicate: strings.TrimSpace(m[3]), K: 3}, nil
	}
	if m := reExplain.FindStringSubmatch(q); m != nil {
		return Query{Class: ClassRelationship, Subject: cleanArg(m[1]), Object: cleanArg(m[2]), Predicate: strings.TrimSpace(m[3]), K: 3}, nil
	}
	if m := reWhere.FindStringSubmatch(q); m != nil {
		return Query{Class: ClassFact, Subject: cleanArg(m[1]), Predicate: "headquarteredIn"}, nil
	}
	if m := reDid.FindStringSubmatch(q); m != nil {
		if pred, ok := verbToPredicate[strings.ToLower(m[2])]; ok {
			return Query{Class: ClassFact, Subject: cleanArg(m[1]), Predicate: pred, Object: cleanArg(m[3])}, nil
		}
	}
	if m := reWhatDoes.FindStringSubmatch(q); m != nil {
		if pred, ok := verbToPredicate[strings.ToLower(m[2])]; ok {
			return Query{Class: ClassFact, Subject: cleanArg(m[1]), Predicate: pred}, nil
		}
	}
	if m := reWho.FindStringSubmatch(q); m != nil {
		if pred, ok := verbToPredicate[strings.ToLower(m[1])]; ok {
			return Query{Class: ClassFact, Predicate: pred, Object: cleanArg(m[2])}, nil
		}
	}
	if m := reEntity.FindStringSubmatch(q); m != nil {
		return Query{Class: ClassEntity, Subject: cleanArg(m[1]), K: 10}, nil
	}
	return Query{}, parseErrf("qa: cannot classify question %q", original)
}

func cleanArg(s string) string {
	s = strings.TrimSpace(s)
	s = strings.Trim(s, `"'`)
	s = strings.TrimSuffix(s, "?")
	s = strings.TrimSuffix(s, ".")
	return strings.TrimSpace(s)
}
