// Package trust implements the source-level trust tracking §3.4 mentions
// alongside link prediction: every data source carries a trust score that
// rises when its facts are corroborated (re-asserted by other sources or
// already present in the curated KB) and falls when they are contradicted
// (a functional predicate already binds the subject to a different object).
// The fixpoint iteration is a small TruthFinder-style mutual recursion:
// fact belief is a trust-weighted vote of its asserting sources; source
// trust is the mean belief of its asserted facts.
package trust

import (
	"math"
	"sort"

	"nous/internal/ontology"
)

// Assertion is one (source, triple) observation.
type Assertion struct {
	Source    string
	Subject   string
	Predicate string
	Object    string
}

// Config tunes the fixpoint.
type Config struct {
	// PriorTrust seeds unseen sources (default 0.5). Curated sources can
	// be pinned with Pin.
	PriorTrust float64
	// Iterations bounds the trust/belief fixpoint (default 10).
	Iterations int
	// Damping mixes the new trust estimate with the previous one.
	Damping float64
}

// DefaultConfig returns the standard fixpoint parameters.
func DefaultConfig() Config {
	return Config{PriorTrust: 0.5, Iterations: 10, Damping: 0.3}
}

// Tracker maintains source trust scores from streamed assertions.
type Tracker struct {
	cfg    Config
	ont    *ontology.Ontology
	pinned map[string]float64

	assertions []Assertion
	// index: fact key -> asserting sources (set)
	bySources map[string]map[string]bool
	// functional conflict detection: (subject, functional predicate) -> objects
	functional map[string]map[string]bool

	trust map[string]float64
}

// NewTracker returns an empty tracker. A nil ontology gets the default
// (the ontology supplies which predicates are functional).
func NewTracker(ont *ontology.Ontology, cfg Config) *Tracker {
	if cfg.Iterations <= 0 {
		cfg = DefaultConfig()
	}
	if ont == nil {
		ont = ontology.Default()
	}
	return &Tracker{
		cfg:        cfg,
		ont:        ont,
		pinned:     make(map[string]float64),
		bySources:  make(map[string]map[string]bool),
		functional: make(map[string]map[string]bool),
		trust:      make(map[string]float64),
	}
}

// Pin fixes a source's trust (e.g. the curated KB at 1.0); pinned sources
// anchor the fixpoint.
func (t *Tracker) Pin(source string, trust float64) {
	t.pinned[source] = clamp01(trust)
	t.trust[source] = t.pinned[source]
}

// Observe records one assertion.
func (t *Tracker) Observe(a Assertion) {
	if a.Source == "" || a.Subject == "" || a.Object == "" {
		return
	}
	t.assertions = append(t.assertions, a)
	k := factKey(a)
	set, ok := t.bySources[k]
	if !ok {
		set = make(map[string]bool)
		t.bySources[k] = set
	}
	set[a.Source] = true
	if p, ok := t.ont.Predicate(a.Predicate); ok && p.Functional {
		fk := a.Subject + "\x00" + a.Predicate
		objs, ok := t.functional[fk]
		if !ok {
			objs = make(map[string]bool)
			t.functional[fk] = objs
		}
		objs[a.Object] = true
	}
	if _, ok := t.trust[a.Source]; !ok {
		t.trust[a.Source] = t.cfg.PriorTrust
	}
}

// Recompute runs the trust/belief fixpoint over everything observed so far
// and returns the updated source trust map.
func (t *Tracker) Recompute() map[string]float64 {
	for it := 0; it < t.cfg.Iterations; it++ {
		// 1. fact belief = 1 - Π (1 - trust(s)) over asserting sources,
		//    halved when the fact participates in a functional conflict.
		belief := make(map[string]float64, len(t.bySources))
		for k, sources := range t.bySources {
			disbelief := 1.0
			for s := range sources {
				disbelief *= 1 - t.trust[s]
			}
			b := 1 - disbelief
			if t.conflicted(k) {
				b *= 0.5
			}
			belief[k] = b
		}
		// 2. source trust = mean belief of asserted facts (damped).
		sum := make(map[string]float64)
		cnt := make(map[string]int)
		for k, sources := range t.bySources {
			for s := range sources {
				sum[s] += belief[k]
				cnt[s]++
			}
		}
		for s := range t.trust {
			if pin, ok := t.pinned[s]; ok {
				t.trust[s] = pin
				continue
			}
			if cnt[s] == 0 {
				continue
			}
			next := sum[s] / float64(cnt[s])
			t.trust[s] = (1-t.cfg.Damping)*next + t.cfg.Damping*t.trust[s]
		}
	}
	out := make(map[string]float64, len(t.trust))
	for s, v := range t.trust {
		out[s] = v
	}
	return out
}

// conflicted reports whether the fact's (subject, predicate) binds multiple
// objects under a functional predicate.
func (t *Tracker) conflicted(factK string) bool {
	a := parseKey(factK)
	p, ok := t.ont.Predicate(a.Predicate)
	if !ok || !p.Functional {
		return false
	}
	return len(t.functional[a.Subject+"\x00"+a.Predicate]) > 1
}

// Trust returns a source's current trust (PriorTrust when unseen).
func (t *Tracker) Trust(source string) float64 {
	if v, ok := t.trust[source]; ok {
		return v
	}
	return t.cfg.PriorTrust
}

// Belief returns the current belief in a triple given the sources that
// asserted it (after the last Recompute's trust values).
func (t *Tracker) Belief(subject, predicate, object string) float64 {
	k := factKey(Assertion{Subject: subject, Predicate: predicate, Object: object})
	sources, ok := t.bySources[k]
	if !ok {
		return 0
	}
	disbelief := 1.0
	for s := range sources {
		disbelief *= 1 - t.trust[s]
	}
	b := 1 - disbelief
	if t.conflicted(k) {
		b *= 0.5
	}
	return b
}

// Sources returns all known sources with their trust, sorted by descending
// trust then name.
func (t *Tracker) Sources() []SourceTrust {
	out := make([]SourceTrust, 0, len(t.trust))
	for s, v := range t.trust {
		out = append(out, SourceTrust{Source: s, Trust: v})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Trust != out[j].Trust {
			return out[i].Trust > out[j].Trust
		}
		return out[i].Source < out[j].Source
	})
	return out
}

// SourceTrust pairs a source with its trust score.
type SourceTrust struct {
	Source string
	Trust  float64
}

func factKey(a Assertion) string {
	return a.Subject + "\x00" + a.Predicate + "\x00" + a.Object
}

func parseKey(k string) Assertion {
	var a Assertion
	parts := [3]string{}
	idx := 0
	start := 0
	for i := 0; i < len(k) && idx < 2; i++ {
		if k[i] == 0 {
			parts[idx] = k[start:i]
			idx++
			start = i + 1
		}
	}
	parts[2] = k[start:]
	a.Subject, a.Predicate, a.Object = parts[0], parts[1], parts[2]
	return a
}

func clamp01(x float64) float64 {
	return math.Max(0, math.Min(1, x))
}
