package trust

import (
	"fmt"
	"testing"
)

func TestCorroborationRaisesTrust(t *testing.T) {
	tr := NewTracker(nil, DefaultConfig())
	tr.Pin("curated-kb", 1.0)

	// goodwire re-asserts curated facts; tabloid asserts unseen ones alone.
	for i := 0; i < 10; i++ {
		fact := Assertion{Subject: fmt.Sprintf("C%d", i), Predicate: "acquired", Object: fmt.Sprintf("D%d", i)}
		fact.Source = "curated-kb"
		tr.Observe(fact)
		fact.Source = "goodwire"
		tr.Observe(fact)
		tr.Observe(Assertion{Source: "tabloid", Subject: fmt.Sprintf("X%d", i), Predicate: "acquired", Object: fmt.Sprintf("Y%d", i)})
	}
	trusts := tr.Recompute()
	if trusts["goodwire"] <= trusts["tabloid"] {
		t.Fatalf("corroborated source not more trusted: goodwire=%.3f tabloid=%.3f",
			trusts["goodwire"], trusts["tabloid"])
	}
	if trusts["curated-kb"] != 1.0 {
		t.Fatalf("pinned trust drifted: %v", trusts["curated-kb"])
	}
}

func TestFunctionalConflictLowersTrust(t *testing.T) {
	tr := NewTracker(nil, DefaultConfig())
	tr.Pin("curated-kb", 1.0)
	// Curated: DJI headquartered in Shenzhen. The conflicting source says
	// Paris; a clean source repeats curated facts.
	tr.Observe(Assertion{Source: "curated-kb", Subject: "DJI", Predicate: "headquarteredIn", Object: "Shenzhen"})
	for i := 0; i < 5; i++ {
		tr.Observe(Assertion{Source: "clean", Subject: "DJI", Predicate: "headquarteredIn", Object: "Shenzhen"})
		tr.Observe(Assertion{Source: "conflicting", Subject: "DJI", Predicate: "headquarteredIn", Object: "Paris"})
	}
	trusts := tr.Recompute()
	if trusts["conflicting"] >= trusts["clean"] {
		t.Fatalf("conflicting source not penalized: clean=%.3f conflicting=%.3f",
			trusts["clean"], trusts["conflicting"])
	}
}

func TestBeliefReflectsSources(t *testing.T) {
	tr := NewTracker(nil, DefaultConfig())
	tr.Pin("curated-kb", 0.95)
	tr.Observe(Assertion{Source: "curated-kb", Subject: "A", Predicate: "acquired", Object: "B"})
	tr.Observe(Assertion{Source: "random-blog", Subject: "C", Predicate: "acquired", Object: "D"})
	tr.Recompute()
	strong := tr.Belief("A", "acquired", "B")
	weak := tr.Belief("C", "acquired", "D")
	if strong <= weak {
		t.Fatalf("belief ordering wrong: strong=%.3f weak=%.3f", strong, weak)
	}
	if got := tr.Belief("X", "acquired", "Y"); got != 0 {
		t.Fatalf("belief in unasserted fact = %v", got)
	}
}

func TestMultipleIndependentSourcesIncreaseBelief(t *testing.T) {
	tr := NewTracker(nil, DefaultConfig())
	tr.Observe(Assertion{Source: "s1", Subject: "A", Predicate: "acquired", Object: "B"})
	tr.Recompute()
	one := tr.Belief("A", "acquired", "B")
	tr.Observe(Assertion{Source: "s2", Subject: "A", Predicate: "acquired", Object: "B"})
	tr.Observe(Assertion{Source: "s3", Subject: "A", Predicate: "acquired", Object: "B"})
	tr.Recompute()
	many := tr.Belief("A", "acquired", "B")
	if many <= one {
		t.Fatalf("corroboration did not raise belief: %v -> %v", one, many)
	}
}

func TestUnknownSourceGetsPrior(t *testing.T) {
	tr := NewTracker(nil, DefaultConfig())
	if got := tr.Trust("nobody"); got != 0.5 {
		t.Fatalf("unknown source trust = %v", got)
	}
}

func TestMalformedAssertionsIgnored(t *testing.T) {
	tr := NewTracker(nil, DefaultConfig())
	tr.Observe(Assertion{Source: "", Subject: "A", Predicate: "p", Object: "B"})
	tr.Observe(Assertion{Source: "s", Subject: "", Predicate: "p", Object: "B"})
	tr.Observe(Assertion{Source: "s", Subject: "A", Predicate: "p", Object: ""})
	if got := tr.Recompute(); len(got) != 0 {
		t.Fatalf("malformed assertions tracked: %v", got)
	}
}

func TestSourcesSorted(t *testing.T) {
	tr := NewTracker(nil, DefaultConfig())
	tr.Pin("a", 0.9)
	tr.Pin("b", 0.2)
	tr.Pin("c", 0.9)
	ss := tr.Sources()
	if len(ss) != 3 || ss[0].Source != "a" || ss[1].Source != "c" || ss[2].Source != "b" {
		t.Fatalf("sources = %+v", ss)
	}
}

func TestTrustStaysInUnitInterval(t *testing.T) {
	tr := NewTracker(nil, DefaultConfig())
	tr.Pin("kb", 1.0)
	for i := 0; i < 50; i++ {
		tr.Observe(Assertion{Source: "kb", Subject: fmt.Sprintf("S%d", i), Predicate: "acquired", Object: "T"})
		tr.Observe(Assertion{Source: "echo", Subject: fmt.Sprintf("S%d", i), Predicate: "acquired", Object: "T"})
	}
	for s, v := range tr.Recompute() {
		if v < 0 || v > 1 {
			t.Fatalf("trust(%s) = %v out of [0,1]", s, v)
		}
	}
}
