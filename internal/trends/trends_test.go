package trends

import (
	"testing"
	"time"

	"nous/internal/core"
	"nous/internal/temporal"
)

func day(n int) time.Time {
	return time.Date(2015, 1, 1, 0, 0, 0, 0, time.UTC).AddDate(0, 0, n)
}

func added(s, p, o string, t time.Time) core.Event {
	return core.Event{Kind: core.FactAdded, Fact: core.Fact{Triple: core.Triple{
		Subject: s, Predicate: p, Object: o,
		Provenance: core.Provenance{Time: t, Source: "wsj"},
	}}}
}

func TestBurstDetection(t *testing.T) {
	d := NewDetector(DefaultConfig())
	// Background: one DJI mention per week for 8 weeks.
	for w := 0; w < 8; w++ {
		d.OnEvent(added("DJI", "manufactures", "Phantom 3", day(w*7)))
	}
	// Burst: five mentions of Windermere in the current week (week 9).
	for i := 0; i < 5; i++ {
		d.OnEvent(added("Windermere", "deploys", "Phantom 3", day(63+i%3)))
	}
	now := day(64)
	ts := d.Trending(now, 5)
	if len(ts) == 0 {
		t.Fatal("no trends")
	}
	if ts[0].Name != "Windermere" {
		t.Fatalf("top trend = %+v, want Windermere", ts[0])
	}
	for _, tr := range ts {
		if tr.Name == "DJI" && tr.Score >= ts[0].Score {
			t.Fatal("steady entity outranked the burst")
		}
	}
}

func TestCuratedFactsIgnored(t *testing.T) {
	d := NewDetector(DefaultConfig())
	ev := added("DJI", "manufactures", "Phantom 3", day(0))
	ev.Fact.Curated = true
	d.OnEvent(ev)
	d.OnEvent(core.Event{Kind: core.FactEvicted, Fact: ev.Fact})
	if got := d.Trending(day(0), 10); len(got) != 0 {
		t.Fatalf("curated/evicted events produced trends: %+v", got)
	}
}

func TestMinCurrentFilters(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MinCurrent = 3
	d := NewDetector(cfg)
	d.OnEvent(added("DJI", "acquired", "Aeros", day(0)))
	d.OnEvent(added("DJI", "acquired", "RoboPix", day(0)))
	// DJI has 2 mentions... wait: subject DJI counts twice (two facts).
	// Aeros and RoboPix have 1 each and must be filtered.
	ts := d.Trending(day(0), 10)
	for _, tr := range ts {
		if tr.Current < 3 {
			t.Fatalf("below-threshold trend leaked: %+v", tr)
		}
	}
}

func TestPredicateTrends(t *testing.T) {
	d := NewDetector(DefaultConfig())
	for i := 0; i < 4; i++ {
		d.OnEvent(added("A Co", "acquired", "B Co", day(i%2)))
	}
	found := false
	for _, tr := range d.Trending(day(1), 10) {
		if tr.Kind == KindPredicate && tr.Name == "acquired" {
			found = true
		}
	}
	if !found {
		t.Fatal("predicate trend missing")
	}
}

func TestTrendingEntitiesOnly(t *testing.T) {
	d := NewDetector(DefaultConfig())
	for i := 0; i < 4; i++ {
		d.OnEvent(added("A Co", "acquired", "B Co", day(0)))
	}
	for _, tr := range d.TrendingEntities(day(0), 10) {
		if tr.Kind != KindEntity {
			t.Fatalf("non-entity in entity trends: %+v", tr)
		}
	}
}

func TestSeries(t *testing.T) {
	d := NewDetector(DefaultConfig())
	d.OnEvent(added("DJI", "acquired", "Aeros", day(0)))
	d.OnEvent(added("DJI", "acquired", "RoboPix", day(7)))
	d.OnEvent(added("DJI", "acquired", "SkyCam 1", day(7)))
	s := d.Series("DJI", day(8), 3)
	if len(s) != 3 {
		t.Fatalf("series len = %d", len(s))
	}
	if s[2] != 2 || s[1] != 1 {
		t.Fatalf("series = %v, want [.. 1 2]", s)
	}
	if got := d.Series("Unknown", day(8), 2); got[0] != 0 || got[1] != 0 {
		t.Fatalf("unknown series = %v", got)
	}
}

func TestQuietWindowFallsBackToLatestActive(t *testing.T) {
	d := NewDetector(DefaultConfig())
	// Burst in week 0; query at week 10 where nothing happened.
	for i := 0; i < 4; i++ {
		d.OnEvent(added("Windermere", "deploys", "Phantom 3", day(0)))
	}
	ts := d.Trending(day(70), 5)
	found := false
	for _, tr := range ts {
		if tr.Name == "Windermere" && tr.Current == 4 {
			found = true
		}
	}
	if !found {
		t.Fatalf("fallback failed: %+v", ts)
	}
}

func TestZeroTimeIgnored(t *testing.T) {
	d := NewDetector(DefaultConfig())
	d.OnEvent(added("DJI", "acquired", "Aeros", time.Time{}))
	if got := d.Trending(day(0), 10); len(got) != 0 {
		t.Fatalf("zero-time event counted: %+v", got)
	}
}

func TestKGIntegration(t *testing.T) {
	kg := core.NewKG(nil)
	d := NewDetector(DefaultConfig())
	kg.Subscribe(d.OnEvent)
	for i := 0; i < 3; i++ {
		if _, err := kg.AddFact(core.Triple{
			Subject: "Windermere", Predicate: "deploys", Object: "Phantom 3",
			Confidence: 0.8, Provenance: core.Provenance{Source: "wsj", Time: day(0)},
		}); err != nil {
			t.Fatal(err)
		}
	}
	ts := d.Trending(day(0), 5)
	if len(ts) == 0 || ts[0].Current < 3 {
		t.Fatalf("KG events not observed: %+v", ts)
	}
}

func TestBucketOfFloorsPre1970(t *testing.T) {
	d := NewDetector(DefaultConfig())
	// A timestamp strictly before the epoch must land in the bucket that
	// contains it, not be truncated toward zero (one bucket late).
	pre := time.Date(1969, 12, 31, 12, 0, 0, 0, time.UTC) // -12h
	b := d.bucketOf(pre)
	if b != -1 {
		t.Fatalf("bucketOf(1969-12-31) = %d, want -1", b)
	}
	// Mentions before 1970 must be counted in their own week, so a query at
	// that time sees them as current.
	d.OnEvent(added("Apollo", "deploys", "Saturn V", pre))
	d.OnEvent(added("Apollo", "deploys", "Saturn V", pre))
	s := d.Series("Apollo", pre, 1)
	if s[0] != 2 {
		t.Fatalf("pre-1970 series = %v, want [2]", s)
	}
	// Exact bucket boundaries stay exact in both eras.
	if got := d.bucketOf(time.Unix(0, 0)); got != 0 {
		t.Fatalf("bucketOf(epoch) = %d", got)
	}
	week := int64((7 * 24 * time.Hour) / time.Second)
	if got := d.bucketOf(time.Unix(-week, 0)); got != -1 {
		t.Fatalf("bucketOf(-1 week exactly) = %d, want -1", got)
	}
}

func TestSeriesNonPositiveN(t *testing.T) {
	d := NewDetector(DefaultConfig())
	d.OnEvent(added("DJI", "acquired", "Aeros", day(0)))
	if got := d.Series("DJI", day(0), 0); got != nil {
		t.Fatalf("Series(n=0) = %v, want nil", got)
	}
	if got := d.Series("DJI", day(0), -3); got != nil {
		t.Fatalf("Series(n=-3) = %v, want nil", got)
	}
}

func TestSeriesSharedNameSumsEntityAndPredicate(t *testing.T) {
	d := NewDetector(DefaultConfig())
	// "acquired" shows up both as an entity mention (subject) and as a
	// predicate; the series must sum both instead of shadowing one.
	d.OnEvent(added("acquired", "deploys", "Phantom 3", day(0))) // entity count
	d.OnEvent(added("DJI", "acquired", "Aeros", day(0)))         // predicate count
	s := d.Series("acquired", day(0), 1)
	if s[0] != 2 {
		t.Fatalf("shared-name series = %v, want [2]", s)
	}
	// A pure predicate name still has a series.
	p := d.Series("deploys", day(0), 1)
	if p[0] != 1 {
		t.Fatalf("predicate series = %v, want [1]", p)
	}
}

func fact(s, p, o string, t time.Time, curated bool) core.Fact {
	return core.Fact{Triple: core.Triple{
		Subject: s, Predicate: p, Object: o, Curated: curated,
		Provenance: core.Provenance{Time: t, Source: "wsj"},
	}}
}

// TestBackfillScoresInsideWindow plants a burst in a historical bucket that
// is NOT the window's end bucket: the live detector anchored at the window's
// end would miss it, the backfill scan must find it.
func TestBackfillScoresInsideWindow(t *testing.T) {
	cfg := Config{Bucket: 7 * 24 * time.Hour, Smoothing: 1, MinCurrent: 2}
	var facts []core.Fact
	// Baseline: one DJI mention per week for weeks 0..3.
	for wk := 0; wk < 4; wk++ {
		facts = append(facts, fact("DJI", "acquired", "Tiny Co", day(wk*7), false))
	}
	// Burst: five mentions in week 4.
	for i := 0; i < 5; i++ {
		facts = append(facts, fact("DJI", "acquired", "Aeros", day(28), false))
	}
	// Quiet again in weeks 5..7 (one mention each) — the window's end bucket
	// is NOT the burst bucket.
	for wk := 5; wk < 8; wk++ {
		facts = append(facts, fact("DJI", "acquired", "Tiny Co", day(wk*7), false))
	}

	w := temporal.Between(day(21), day(56)) // weeks 3..7
	got := Backfill(facts, w, cfg, 10)
	var dji *Trend
	for i := range got {
		if got[i].Name == "DJI" && got[i].Kind == KindEntity {
			dji = &got[i]
		}
	}
	if dji == nil {
		t.Fatalf("backfill missed the in-window burst: %+v", got)
	}
	// The best bucket is the week-4 burst (5+5=10 mentions of DJI as
	// subject... DJI appears once per fact), not the quiet end bucket.
	if dji.Current != 5 {
		t.Fatalf("backfill picked current=%d, want the 5-mention burst bucket", dji.Current)
	}
	if dji.Score <= 1 {
		t.Fatalf("burst not scored as a burst: %+v", dji)
	}
}

// TestBackfillRespectsWindowAndHistory: buckets outside the window never
// produce trends, but history before the window still feeds baselines, and
// facts after the window's end are invisible entirely.
func TestBackfillRespectsWindowAndHistory(t *testing.T) {
	cfg := Config{Bucket: 7 * 24 * time.Hour, Smoothing: 1, MinCurrent: 2}
	var facts []core.Fact
	// Big pre-window history for Windermere: 4/week for weeks 0..3.
	for wk := 0; wk < 4; wk++ {
		for i := 0; i < 4; i++ {
			facts = append(facts, fact("Windermere", "deploys", "Phantom", day(wk*7), false))
		}
	}
	// In-window: Windermere at its usual rate (no burst), GoPro bursting.
	for i := 0; i < 4; i++ {
		facts = append(facts, fact("Windermere", "deploys", "Phantom", day(28), false))
	}
	for i := 0; i < 6; i++ {
		facts = append(facts, fact("GoPro", "acquired", "Aeros", day(28), false))
	}
	// Post-window burst that must not leak in.
	for i := 0; i < 50; i++ {
		facts = append(facts, fact("Parrot", "acquired", "Aeros", day(70), false))
	}

	w := temporal.Between(day(28), day(35)) // week 4 only
	got := Backfill(facts, w, cfg, 0)
	for _, tr := range got {
		if tr.Name == "Parrot" {
			t.Fatalf("post-window fact leaked into backfill: %+v", tr)
		}
	}
	var wind, gopro *Trend
	for i := range got {
		switch got[i].Name {
		case "Windermere":
			wind = &got[i]
		case "GoPro":
			gopro = &got[i]
		}
	}
	if gopro == nil || wind == nil {
		t.Fatalf("missing expected trends: %+v", got)
	}
	// Windermere's baseline (4/week history) flattens its score; GoPro's
	// fresh burst must outrank it.
	if gopro.Score <= wind.Score {
		t.Fatalf("baseline-aware ranking wrong: gopro=%+v wind=%+v", gopro, wind)
	}
	if wind.Baseline != 4 {
		t.Fatalf("pre-window history not feeding baseline: %+v", wind)
	}
}

// TestBackfillIgnoresCuratedAndTimelessAndEmpty mirrors the live detector's
// admission rule and the empty-window contract.
func TestBackfillIgnoresCuratedAndTimelessAndEmpty(t *testing.T) {
	cfg := DefaultConfig()
	facts := []core.Fact{
		fact("DJI", "acquired", "Aeros", day(0), true),       // curated
		fact("DJI", "acquired", "Aeros", time.Time{}, false), // timeless
		fact("DJI", "acquired", "Aeros", day(0), false),
		fact("DJI", "acquired", "Aeros", day(0), false),
	}
	got := Backfill(facts, temporal.Between(day(0), day(7)), cfg, 0)
	for _, tr := range got {
		if tr.Name == "DJI" && tr.Current != 2 {
			t.Fatalf("curated/timeless facts counted: %+v", tr)
		}
	}
	if len(got) == 0 {
		t.Fatal("extracted facts not counted at all")
	}
	if out := Backfill(facts, temporal.Empty(), cfg, 0); len(out) != 0 {
		t.Fatalf("empty window produced trends: %+v", out)
	}
}
