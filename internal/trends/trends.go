// Package trends answers the first of NOUS's two headline query classes
// (§1.1): discovering trends in streaming data. A detector consumes
// fact-level events from the dynamic KG, buckets extracted-fact activity
// per entity and per predicate over time, and scores burstiness as the
// ratio of current-window activity to the historical per-bucket average.
package trends

import (
	"sort"
	"sync"
	"time"

	"nous/internal/core"
)

// Kind distinguishes what a trend is about.
type Kind string

// Trend kinds.
const (
	KindEntity    Kind = "entity"
	KindPredicate Kind = "predicate"
)

// Trend is one trending item.
type Trend struct {
	Name     string
	Kind     Kind
	Current  int     // mentions in the current window
	Baseline float64 // historical mean mentions per window
	Score    float64 // burst score: (current+s)/(baseline+s)
}

// Config tunes the detector.
type Config struct {
	// Bucket is the histogram resolution (default 7 days).
	Bucket time.Duration
	// Smoothing is the additive constant in the burst ratio (default 1).
	Smoothing float64
	// MinCurrent suppresses trends with fewer current-window mentions.
	MinCurrent int
}

// DefaultConfig buckets by week, the cadence of the paper's WSJ demo.
func DefaultConfig() Config {
	return Config{Bucket: 7 * 24 * time.Hour, Smoothing: 1, MinCurrent: 2}
}

// Detector accumulates activity histograms. Wire it to a KG with
// kg.Subscribe(d.OnEvent). All methods are safe for concurrent use, so
// trend queries can run while ingestion streams events in.
type Detector struct {
	mu  sync.RWMutex
	cfg Config
	// counts[kind][name][bucket] = mentions
	entityCounts map[string]map[int64]int
	predCounts   map[string]map[int64]int
}

// NewDetector returns an empty detector.
func NewDetector(cfg Config) *Detector {
	if cfg.Bucket <= 0 {
		cfg = DefaultConfig()
	}
	if cfg.Smoothing <= 0 {
		cfg.Smoothing = 1
	}
	return &Detector{
		cfg:          cfg,
		entityCounts: make(map[string]map[int64]int),
		predCounts:   make(map[string]map[int64]int),
	}
}

// OnEvent consumes a KG fact event. Only extracted (non-curated) additions
// count toward trends: curated facts are background knowledge, not news.
func (d *Detector) OnEvent(ev core.Event) {
	if ev.Kind != core.FactAdded || ev.Fact.Curated {
		return
	}
	t := ev.Fact.Provenance.Time
	if t.IsZero() {
		return
	}
	b := d.bucketOf(t)
	d.mu.Lock()
	bump(d.entityCounts, ev.Fact.Subject, b)
	bump(d.entityCounts, ev.Fact.Object, b)
	bump(d.predCounts, ev.Fact.Predicate, b)
	d.mu.Unlock()
}

func (d *Detector) bucketOf(t time.Time) int64 {
	bucket := int64(d.cfg.Bucket / time.Second)
	if bucket <= 0 {
		bucket = 1
	}
	sec := t.Unix()
	b := sec / bucket
	// Integer division truncates toward zero; floor it so pre-1970
	// timestamps land in the bucket containing them, not one bucket late.
	if sec%bucket != 0 && sec < 0 {
		b--
	}
	return b
}

func bump(m map[string]map[int64]int, name string, bucket int64) {
	byBucket, ok := m[name]
	if !ok {
		byBucket = make(map[int64]int)
		m[name] = byBucket
	}
	byBucket[bucket]++
}

// Trending returns the top-k bursting entities and predicates for the
// window containing now, ordered by descending burst score. When the
// current window is quiet (no item reaches MinCurrent — streams are bursty
// and the last bucket may be nearly empty), it falls back to the most
// recent window with qualifying activity.
func (d *Detector) Trending(now time.Time, k int) []Trend {
	cur := d.bucketOf(now)
	d.mu.RLock()
	out := d.trendingAt(cur)
	if len(out) == 0 {
		if b, ok := d.latestActiveBucket(cur); ok {
			out = d.trendingAt(b)
		}
	}
	d.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		if out[i].Current != out[j].Current {
			return out[i].Current > out[j].Current
		}
		return out[i].Name < out[j].Name
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

func (d *Detector) trendingAt(cur int64) []Trend {
	var out []Trend
	out = append(out, d.scan(d.entityCounts, KindEntity, cur)...)
	out = append(out, d.scan(d.predCounts, KindPredicate, cur)...)
	return out
}

// latestActiveBucket returns the most recent bucket at or before cur in
// which any entity or predicate reached MinCurrent mentions.
func (d *Detector) latestActiveBucket(cur int64) (int64, bool) {
	best := int64(0)
	found := false
	scanMap := func(m map[string]map[int64]int) {
		for _, byBucket := range m {
			for b, c := range byBucket {
				if b <= cur && c >= d.cfg.MinCurrent && (!found || b > best) {
					best = b
					found = true
				}
			}
		}
	}
	scanMap(d.entityCounts)
	scanMap(d.predCounts)
	return best, found
}

// TrendingEntities is Trending filtered to entities.
func (d *Detector) TrendingEntities(now time.Time, k int) []Trend {
	var out []Trend
	for _, t := range d.Trending(now, 0) {
		if t.Kind == KindEntity {
			out = append(out, t)
		}
	}
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

func (d *Detector) scan(m map[string]map[int64]int, kind Kind, cur int64) []Trend {
	var out []Trend
	for name, byBucket := range m {
		current := byBucket[cur]
		if current < d.cfg.MinCurrent {
			continue
		}
		// historical mean over buckets strictly before cur
		sum, n := 0, 0
		for b, c := range byBucket {
			if b < cur {
				sum += c
				n++
			}
		}
		baseline := 0.0
		if n > 0 {
			baseline = float64(sum) / float64(n)
		}
		s := d.cfg.Smoothing
		out = append(out, Trend{
			Name:     name,
			Kind:     kind,
			Current:  current,
			Baseline: baseline,
			Score:    (float64(current) + s) / (baseline + s),
		})
	}
	return out
}

// Series returns the activity counts under a name for the n buckets ending
// at the one containing now — the sparkline behind Fig 6's entity view. When
// an entity and a predicate share the name, their counts are summed rather
// than the predicate's being shadowed. A non-positive n returns nil.
func (d *Detector) Series(name string, now time.Time, n int) []int {
	if n <= 0 {
		return nil
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	entity := d.entityCounts[name]
	pred := d.predCounts[name]
	cur := d.bucketOf(now)
	out := make([]int, n)
	for i := 0; i < n; i++ {
		b := cur - int64(n-1-i)
		out[i] = entity[b] + pred[b]
	}
	return out
}
