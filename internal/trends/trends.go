// Package trends answers the first of NOUS's two headline query classes
// (§1.1): discovering trends in streaming data. A detector consumes
// fact-level events from the dynamic KG, buckets extracted-fact activity
// per entity and per predicate over time, and scores burstiness as the
// ratio of current-window activity to the historical per-bucket average.
package trends

import (
	"sort"
	"sync"
	"time"

	"nous/internal/core"
	"nous/internal/temporal"
)

// Kind distinguishes what a trend is about.
type Kind string

// Trend kinds.
const (
	KindEntity    Kind = "entity"
	KindPredicate Kind = "predicate"
)

// Trend is one trending item.
type Trend struct {
	Name     string
	Kind     Kind
	Current  int     // mentions in the current window
	Baseline float64 // historical mean mentions per window
	Score    float64 // burst score: (current+s)/(baseline+s)
}

// Config tunes the detector.
type Config struct {
	// Bucket is the histogram resolution (default 7 days).
	Bucket time.Duration
	// Smoothing is the additive constant in the burst ratio (default 1).
	Smoothing float64
	// MinCurrent suppresses trends with fewer current-window mentions.
	MinCurrent int
}

// DefaultConfig buckets by week, the cadence of the paper's WSJ demo.
func DefaultConfig() Config {
	return Config{Bucket: 7 * 24 * time.Hour, Smoothing: 1, MinCurrent: 2}
}

// Detector accumulates activity histograms. Wire it to a KG with
// kg.Subscribe(d.OnEvent). All methods are safe for concurrent use, so
// trend queries can run while ingestion streams events in.
type Detector struct {
	mu  sync.RWMutex
	cfg Config
	// counts[kind][name][bucket] = mentions
	entityCounts map[string]map[int64]int
	predCounts   map[string]map[int64]int
}

// NewDetector returns an empty detector.
func NewDetector(cfg Config) *Detector {
	if cfg.Bucket <= 0 {
		cfg = DefaultConfig()
	}
	if cfg.Smoothing <= 0 {
		cfg.Smoothing = 1
	}
	return &Detector{
		cfg:          cfg,
		entityCounts: make(map[string]map[int64]int),
		predCounts:   make(map[string]map[int64]int),
	}
}

// OnEvent consumes a KG fact event. Only extracted (non-curated) additions
// count toward trends: curated facts are background knowledge, not news.
func (d *Detector) OnEvent(ev core.Event) {
	if ev.Kind != core.FactAdded || ev.Fact.Curated {
		return
	}
	t := ev.Fact.Provenance.Time
	if t.IsZero() {
		return
	}
	b := d.bucketOf(t)
	d.mu.Lock()
	bump(d.entityCounts, ev.Fact.Subject, b)
	bump(d.entityCounts, ev.Fact.Object, b)
	bump(d.predCounts, ev.Fact.Predicate, b)
	d.mu.Unlock()
}

// Config returns the detector's configuration (immutable after NewDetector),
// so windowed backfill scans can bucket with the live detector's resolution.
func (d *Detector) Config() Config { return d.cfg }

func (d *Detector) bucketOf(t time.Time) int64 {
	return bucketAt(d.cfg, t.Unix())
}

// bucketAt maps a unix timestamp onto a bucket index under cfg's resolution.
func bucketAt(cfg Config, sec int64) int64 {
	bucket := int64(cfg.Bucket / time.Second)
	if bucket <= 0 {
		bucket = 1
	}
	b := sec / bucket
	// Integer division truncates toward zero; floor it so pre-1970
	// timestamps land in the bucket containing them, not one bucket late.
	if sec%bucket != 0 && sec < 0 {
		b--
	}
	return b
}

func bump(m map[string]map[int64]int, name string, bucket int64) {
	byBucket, ok := m[name]
	if !ok {
		byBucket = make(map[int64]int)
		m[name] = byBucket
	}
	byBucket[bucket]++
}

// burstScore is the one burst formula: the smoothed ratio of a bucket's
// count to its historical baseline, shared by the live detector's scan and
// windowed Backfill.
func burstScore(current int, baseline, smoothing float64) float64 {
	return (float64(current) + smoothing) / (baseline + smoothing)
}

// burstAt scores byBucket[b] against the historical mean of the buckets
// strictly before b.
func burstAt(byBucket map[int64]int, b int64, smoothing float64) (current int, baseline, score float64) {
	current = byBucket[b]
	sum, n := 0, 0
	for hb, hc := range byBucket {
		if hb < b {
			sum += hc
			n++
		}
	}
	if n > 0 {
		baseline = float64(sum) / float64(n)
	}
	return current, baseline, burstScore(current, baseline, smoothing)
}

// trendLess is the canonical trend ordering: score desc, current desc, name
// asc — shared by Trending and Backfill.
func trendLess(a, b Trend) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	if a.Current != b.Current {
		return a.Current > b.Current
	}
	return a.Name < b.Name
}

// Trending returns the top-k bursting entities and predicates for the
// window containing now, ordered by descending burst score. When the
// current window is quiet (no item reaches MinCurrent — streams are bursty
// and the last bucket may be nearly empty), it falls back to the most
// recent window with qualifying activity.
func (d *Detector) Trending(now time.Time, k int) []Trend {
	cur := d.bucketOf(now)
	d.mu.RLock()
	out := d.trendingAt(cur)
	if len(out) == 0 {
		if b, ok := d.latestActiveBucket(cur); ok {
			out = d.trendingAt(b)
		}
	}
	d.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return trendLess(out[i], out[j]) })
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

func (d *Detector) trendingAt(cur int64) []Trend {
	var out []Trend
	out = append(out, d.scan(d.entityCounts, KindEntity, cur)...)
	out = append(out, d.scan(d.predCounts, KindPredicate, cur)...)
	return out
}

// latestActiveBucket returns the most recent bucket at or before cur in
// which any entity or predicate reached MinCurrent mentions.
func (d *Detector) latestActiveBucket(cur int64) (int64, bool) {
	best := int64(0)
	found := false
	scanMap := func(m map[string]map[int64]int) {
		for _, byBucket := range m {
			for b, c := range byBucket {
				if b <= cur && c >= d.cfg.MinCurrent && (!found || b > best) {
					best = b
					found = true
				}
			}
		}
	}
	scanMap(d.entityCounts)
	scanMap(d.predCounts)
	return best, found
}

// TrendingEntities is Trending filtered to entities.
func (d *Detector) TrendingEntities(now time.Time, k int) []Trend {
	var out []Trend
	for _, t := range d.Trending(now, 0) {
		if t.Kind == KindEntity {
			out = append(out, t)
		}
	}
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

func (d *Detector) scan(m map[string]map[int64]int, kind Kind, cur int64) []Trend {
	var out []Trend
	for name, byBucket := range m {
		if byBucket[cur] < d.cfg.MinCurrent {
			continue
		}
		current, baseline, score := burstAt(byBucket, cur, d.cfg.Smoothing)
		out = append(out, Trend{
			Name:     name,
			Kind:     kind,
			Current:  current,
			Baseline: baseline,
			Score:    score,
		})
	}
	return out
}

// Series returns the activity counts under a name for the n buckets ending
// at the one containing now — the sparkline behind Fig 6's entity view. When
// an entity and a predicate share the name, their counts are summed rather
// than the predicate's being shadowed. A non-positive n returns nil.
func (d *Detector) Series(name string, now time.Time, n int) []int {
	if n <= 0 {
		return nil
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	entity := d.entityCounts[name]
	pred := d.predCounts[name]
	cur := d.bucketOf(now)
	out := make([]int, n)
	for i := 0; i < n; i++ {
		b := cur - int64(n-1-i)
		out[i] = entity[b] + pred[b]
	}
	return out
}

// Backfill scores bursts inside an arbitrary historical window from a replay
// of dated facts — the windowed complement of the live detector, which only
// scores the single bucket its clock sits in. The facts slice must contain
// every dated fact up to the window's end (history before the window feeds
// the baselines); callers typically materialize it from the temporal index.
// Like the live detector, only extracted facts with a provenance time count.
//
// Each (name, bucket) pair whose bucket overlaps the window and whose count
// reaches cfg.MinCurrent is burst-scored against the mean of that name's
// buckets strictly before it; the best-scoring bucket per name wins. Results
// are ordered like Trending (score desc, current desc, name asc) and
// truncated to k (k <= 0 keeps everything).
func Backfill(facts []core.Fact, w temporal.Window, cfg Config, k int) []Trend {
	if cfg.Bucket <= 0 {
		cfg = DefaultConfig()
	}
	if cfg.Smoothing <= 0 {
		cfg.Smoothing = 1
	}
	if w.IsEmpty() {
		return nil
	}
	entityCounts := make(map[string]map[int64]int)
	predCounts := make(map[string]map[int64]int)
	for _, f := range facts {
		if f.Curated || f.Provenance.Time.IsZero() {
			continue
		}
		ts := f.Provenance.Time.Unix()
		if !w.IsAll() && ts >= w.Until {
			continue // beyond the window's end: not even baseline history
		}
		b := bucketAt(cfg, ts)
		bump(entityCounts, f.Subject, b)
		bump(entityCounts, f.Object, b)
		bump(predCounts, f.Predicate, b)
	}

	bucketSec := int64(cfg.Bucket / time.Second)
	if bucketSec <= 0 {
		bucketSec = 1
	}
	// A bucket b covers [b*bucketSec, (b+1)*bucketSec); it overlaps the
	// window when it starts before Until and ends after Since.
	inWindow := func(b int64) bool {
		if w.IsAll() {
			return true
		}
		return b*bucketSec < w.Until && (b+1)*bucketSec > w.Since
	}

	var out []Trend
	scanWindow := func(m map[string]map[int64]int, kind Kind) {
		for name, byBucket := range m {
			// Sweep the buckets in ascending order with a running prefix
			// sum, so every bucket's strictly-before baseline mean falls out
			// in O(B log B) per name instead of rescanning history per
			// scored bucket.
			keys := make([]int64, 0, len(byBucket))
			for b := range byBucket {
				keys = append(keys, b)
			}
			sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
			best, found := Trend{}, false
			sum, n := 0, 0
			for _, b := range keys {
				current := byBucket[b]
				if current >= cfg.MinCurrent && inWindow(b) {
					baseline := 0.0
					if n > 0 {
						baseline = float64(sum) / float64(n)
					}
					tr := Trend{
						Name:     name,
						Kind:     kind,
						Current:  current,
						Baseline: baseline,
						Score:    burstScore(current, baseline, cfg.Smoothing),
					}
					if !found || tr.Score > best.Score ||
						(tr.Score == best.Score && tr.Current > best.Current) {
						best, found = tr, true
					}
				}
				sum += current
				n++
			}
			if found {
				out = append(out, best)
			}
		}
	}
	scanWindow(entityCounts, KindEntity)
	scanWindow(predCounts, KindPredicate)

	sort.Slice(out, func(i, j int) bool { return trendLess(out[i], out[j]) })
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}
