// Package stream glues NOUS's pipeline stages (Fig 1) into a streaming
// document processor: text → triple extraction (NER + coref + OpenIE) →
// predicate mapping (distant supervision) → entity disambiguation →
// confidence estimation (BPR link prediction blended with extractor
// confidence) → dynamic-KG update, with a sliding window evicting stale
// extracted facts. Extraction parallelizes across worker goroutines;
// knowledge integration stays in document order so results are
// deterministic.
package stream

import (
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"nous/internal/analytics"
	"nous/internal/core"
	"nous/internal/corpus"
	"nous/internal/disambig"
	"nous/internal/extract"
	"nous/internal/linkpred"
	"nous/internal/ner"
	"nous/internal/nlp"
	"nous/internal/ontology"
	"nous/internal/predmap"
	"nous/internal/trust"
)

// Config tunes the pipeline.
type Config struct {
	// ConfidenceThreshold gates facts out of the KG (quality control).
	ConfidenceThreshold float64
	// BlendExtractor weighs extractor confidence against the link
	// prediction score: final = w*extract + (1-w)*linkpred.
	BlendExtractor float64
	// Window evicts extracted facts older than this horizon relative to
	// the newest document; 0 disables eviction.
	Window time.Duration
	// Workers parallelizes extraction. Default GOMAXPROCS.
	Workers int
	// LearnEvery runs a distant-supervision expansion round every N
	// documents. 0 disables learning.
	LearnEvery int
	// OnlineUpdate trains the link predictor on accepted facts.
	OnlineUpdate bool
}

// DefaultConfig matches the experiments in EXPERIMENTS.md.
func DefaultConfig() Config {
	return Config{
		ConfidenceThreshold: 0.35,
		BlendExtractor:      0.5,
		Window:              0,
		LearnEvery:          200,
		OnlineUpdate:        true,
	}
}

// Stats counts pipeline outcomes.
type Stats struct {
	Documents     int
	Sentences     int
	RawTriples    int
	Mapped        int
	Accepted      int
	Rejected      int // mapped but below the confidence gate
	RulesLearned  int
	FactsEvicted  int
	NewEntities   int
	CorefResolved int
}

// Pipeline is the end-to-end processor. Construct with New, then feed
// documents with Process or Run.
type Pipeline struct {
	cfg     Config
	kg      *core.KG
	rec     *ner.Recognizer
	ext     *extract.Extractor
	mapper  *predmap.Mapper
	model   *linkpred.Model
	linker  *disambig.Linker
	tracker *trust.Tracker

	mu         sync.Mutex
	stats      Stats
	learnBuf   []extract.RawTriple
	latestSeen time.Time
}

// New builds a pipeline over a KG already loaded with the curated KB. The
// NER gazetteer, predicate seeds and link-prediction model are initialized
// from the KG's current contents. A private analytics cache backs the
// disambiguation prior; use NewWith to share one cache with the query
// engine.
func New(kg *core.KG, cfg Config) *Pipeline {
	return NewWith(kg, cfg, nil)
}

// NewWith builds a pipeline whose disambiguation popularity prior is served
// by the given analytics cache (nil constructs a private one).
func NewWith(kg *core.KG, cfg Config, ac *analytics.Cache) *Pipeline {
	if ac == nil {
		ac = analytics.New(kg)
	}
	if cfg.ConfidenceThreshold <= 0 {
		cfg = DefaultConfig()
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	rec := ner.NewRecognizer()
	kg.ForEachAlias(func(alias, canonical string, typ ontology.EntityType) {
		rec.AddGazetteer(alias, typ)
	})
	mapper := predmap.NewMapper(kg.Ontology(), predmap.DefaultConfig())
	mapper.AddDefaultSeeds()
	facts := kg.AllFacts()
	triples := make([]core.Triple, len(facts))
	for i, f := range facts {
		triples[i] = f.Triple
	}
	model := linkpred.Train(triples, linkpred.DefaultConfig())

	// Source-level trust (§3.4): curated sources anchor the fixpoint;
	// stream sources earn trust through corroboration.
	tracker := trust.NewTracker(kg.Ontology(), trust.DefaultConfig())
	for _, f := range facts {
		if f.Curated && f.Provenance.Source != "" {
			tracker.Pin(f.Provenance.Source, 0.95)
		}
		tracker.Observe(trust.Assertion{
			Source: f.Provenance.Source, Subject: f.Subject,
			Predicate: f.Predicate, Object: f.Object,
		})
	}
	return &Pipeline{
		cfg:     cfg,
		kg:      kg,
		rec:     rec,
		ext:     extract.New(rec, kg.Ontology()),
		mapper:  mapper,
		model:   model,
		linker:  disambig.NewLinkerWith(kg, disambig.DefaultConfig(), ac),
		tracker: tracker,
	}
}

// KG returns the pipeline's knowledge graph.
func (p *Pipeline) KG() *core.KG { return p.kg }

// Model returns the link-prediction model (for QA plausibility scoring).
func (p *Pipeline) Model() *linkpred.Model { return p.model }

// Mapper returns the predicate mapper (to inspect learned rules).
func (p *Pipeline) Mapper() *predmap.Mapper { return p.mapper }

// Linker returns the entity disambiguator.
func (p *Pipeline) Linker() *disambig.Linker { return p.linker }

// Trust returns the source-trust tracker (recomputed on the LearnEvery
// cadence).
func (p *Pipeline) Trust() *trust.Tracker { return p.tracker }

// Stats returns a snapshot of pipeline counters.
func (p *Pipeline) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Process runs one article through the pipeline.
func (p *Pipeline) Process(a corpus.Article) {
	raws := p.extractArticle(a)
	p.integrate(a, raws)
}

// Run processes articles through a bounded worker pool: the embarrassingly
// parallel extraction stage (NLP chunking, NER, triple extraction) fans out
// across Workers goroutines while the order-sensitive integration stage
// (disambiguation, confidence gating, KG writes) consumes completed
// extractions in document order on the calling goroutine. Integration of
// article i starts as soon as its extraction lands — it does not wait for
// the whole batch — so extraction and integration overlap.
func (p *Pipeline) Run(articles []corpus.Article) Stats {
	n := len(articles)
	if n == 0 {
		return p.Stats()
	}
	workers := p.cfg.Workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for _, a := range articles {
			p.Process(a)
		}
		return p.Stats()
	}

	// Receiving every per-article result below is what joins the workers:
	// once results[n-1] arrives, all extractions have completed.
	jobs := make(chan int)
	results := make([]chan []extract.RawTriple, n)
	for i := range results {
		results[i] = make(chan []extract.RawTriple, 1)
	}
	for w := 0; w < workers; w++ {
		go func() {
			for i := range jobs {
				results[i] <- p.extractArticle(articles[i])
			}
		}()
	}
	go func() {
		for i := 0; i < n; i++ {
			jobs <- i
		}
		close(jobs)
	}()

	// In-order integration, pipelined against extraction.
	for i, a := range articles {
		p.integrate(a, <-results[i])
	}
	return p.Stats()
}

// extractArticle is the stateless, parallel-safe stage.
func (p *Pipeline) extractArticle(a corpus.Article) []extract.RawTriple {
	doc := extract.Document{ID: a.ID, Source: a.Source, Date: a.Date, Text: a.Text}
	return p.ext.Extract(doc)
}

// integrate maps, disambiguates, scores and stores one document's raw
// triples; it must run in document order.
func (p *Pipeline) integrate(a corpus.Article, raws []extract.RawTriple) {
	p.mu.Lock()
	defer p.mu.Unlock()

	p.stats.Documents++
	p.stats.Sentences += len(nlp.SplitSentences(a.Text))
	p.stats.RawTriples += len(raws)
	p.learnBuf = append(p.learnBuf, raws...)

	// Edge writes for facts accepted from this document are deferred into
	// one batch (each graph shard locked once) after the per-triple
	// decisions. To keep per-fact semantics, the rest happens eagerly at
	// accept time: entities register immediately (so later mentions in the
	// same document resolve against them) and `pending` stands in for the
	// not-yet-written edges in the duplicate check.
	context := contentWordsOf(a.Text)
	var batch []core.Triple
	pending := make(map[[3]string]bool)
	entitiesBefore := p.kg.NumEntities()
	for _, rt := range raws {
		mapped, ok := p.mapper.Map(rt)
		if !ok {
			continue
		}
		p.stats.Mapped++

		mapped.Subject = p.resolveEntity(mapped.Subject, context)
		mapped.Object = p.resolveEntity(mapped.Object, context)
		if mapped.Subject == "" || mapped.Object == "" || mapped.Subject == mapped.Object {
			continue
		}
		p.tracker.Observe(trust.Assertion{
			Source: mapped.Provenance.Source, Subject: mapped.Subject,
			Predicate: mapped.Predicate, Object: mapped.Object,
		})

		// Confidence: blend the extractor/mapping confidence with the
		// link-prediction score conditioned on the prior KG state.
		lp := p.model.Score(mapped.Subject, mapped.Predicate, mapped.Object)
		w := p.cfg.BlendExtractor
		score := w*mapped.Confidence + (1-w)*lp
		key := [3]string{mapped.Subject, mapped.Predicate, mapped.Object}
		if pending[key] || p.kg.HasFact(mapped.Subject, mapped.Predicate, mapped.Object) {
			// Re-observations reinforce: keep the max-confidence copy out
			// of the graph but still feed online training.
			if p.cfg.OnlineUpdate {
				p.model.Update(mapped, 2)
			}
			continue
		}
		if score < p.cfg.ConfidenceThreshold {
			p.stats.Rejected++
			continue
		}
		mapped.Confidence = score
		norm, err := p.kg.NormalizeTriple(mapped)
		if err != nil {
			p.stats.Rejected++
			continue
		}
		p.kg.AddEntity(norm.Subject, norm.SubjectType)
		p.kg.AddEntity(norm.Object, norm.ObjectType)
		batch = append(batch, norm)
		pending[key] = true
		if p.cfg.OnlineUpdate {
			p.model.Update(norm, 2)
		}
	}
	_, errs := p.kg.AddFacts(batch)
	for _, err := range errs {
		if err != nil {
			p.stats.Rejected++
			continue
		}
		p.stats.Accepted++
	}
	// Entities on this path are created only by the AddEntity calls above,
	// so one per-document bracket equals the old per-fact accounting.
	p.stats.NewEntities += p.kg.NumEntities() - entitiesBefore

	// Sliding window.
	if !a.Date.IsZero() && a.Date.After(p.latestSeen) {
		p.latestSeen = a.Date
	}
	if p.cfg.Window > 0 && !p.latestSeen.IsZero() {
		p.stats.FactsEvicted += p.kg.EvictBefore(p.latestSeen.Add(-p.cfg.Window))
	}

	// Periodic semi-supervised expansion and trust fixpoint. The
	// disambiguation prior no longer needs an explicit refresh: it is
	// epoch-versioned and recomputes lazily after any KG write.
	if p.cfg.LearnEvery > 0 && p.stats.Documents%p.cfg.LearnEvery == 0 {
		p.stats.RulesLearned += p.mapper.Learn(p.learnBuf, p.kg)
		p.learnBuf = p.learnBuf[:0]
		p.tracker.Recompute()
	}
}

// resolveEntity maps a surface form onto a canonical KG entity, or keeps
// the surface as a new entity name when the KB has no candidate (the paper:
// "or else create a new node").
func (p *Pipeline) resolveEntity(surface string, context []string) string {
	surface = strings.TrimSpace(surface)
	if surface == "" {
		return ""
	}
	cands := p.kg.Candidates(surface)
	switch len(cands) {
	case 0:
		return surface // new entity
	case 1:
		return cands[0]
	}
	r := p.linker.LinkOne(disambig.Mention{Surface: surface, Context: context})
	if r.Entity != "" {
		return r.Entity
	}
	return cands[0]
}

func contentWordsOf(text string) []string {
	var out []string
	for _, s := range nlp.Process(text) {
		out = append(out, nlp.ContentWords(s)...)
	}
	sort.Strings(out)
	return out
}
