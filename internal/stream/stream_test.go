package stream

import (
	"testing"
	"time"

	"nous/internal/corpus"
)

func smallWorld() *corpus.World {
	cfg := corpus.DefaultConfig()
	cfg.Companies = 12
	cfg.People = 12
	cfg.Products = 12
	cfg.Events = 80
	return corpus.Generate(cfg)
}

func TestPipelineEndToEnd(t *testing.T) {
	w := smallWorld()
	kg, err := w.LoadKG()
	if err != nil {
		t.Fatal(err)
	}
	curatedFacts := kg.NumFacts()

	p := New(kg, DefaultConfig())
	articles := corpus.GenerateArticles(w, corpus.DefaultArticleConfig(120))
	st := p.Run(articles)

	if st.Documents != 120 {
		t.Fatalf("documents = %d", st.Documents)
	}
	if st.RawTriples == 0 || st.Mapped == 0 || st.Accepted == 0 {
		t.Fatalf("pipeline produced nothing: %+v", st)
	}
	if kg.NumFacts() <= curatedFacts {
		t.Fatal("no extracted facts entered the KG")
	}
	// Extracted facts must carry provenance and confidences in (0,1].
	extracted := 0
	for _, f := range kg.AllFacts() {
		if f.Curated {
			continue
		}
		extracted++
		if f.Confidence <= 0 || f.Confidence > 1 {
			t.Fatalf("bad confidence %v on %+v", f.Confidence, f)
		}
		if f.Provenance.Source == "" || f.Provenance.DocID == "" {
			t.Fatalf("missing provenance on %+v", f)
		}
	}
	if extracted == 0 {
		t.Fatal("no extracted facts")
	}
}

// Recall floor: the pipeline must recover a healthy fraction of the
// ground-truth events its articles report. This is the integration-level
// extraction quality gate.
func TestPipelineRecallFloor(t *testing.T) {
	w := smallWorld()
	kg, err := w.LoadKG()
	if err != nil {
		t.Fatal(err)
	}
	p := New(kg, DefaultConfig())
	acfg := corpus.DefaultArticleConfig(150)
	acfg.AliasRate = 0 // isolate extraction quality from disambiguation
	articles := corpus.GenerateArticles(w, acfg)
	p.Run(articles)

	total, hit := 0, 0
	for _, a := range articles {
		for _, ev := range a.Truth {
			total++
			if kg.HasFact(ev.Subject, ev.Predicate, ev.Object) {
				hit++
			}
		}
	}
	if total == 0 {
		t.Fatal("no ground truth")
	}
	recall := float64(hit) / float64(total)
	if recall < 0.5 {
		t.Fatalf("recall = %.2f (%d/%d), want >= 0.5", recall, hit, total)
	}
}

// Precision gate: facts admitted to the KG should mostly be true in the
// world (curated facts are true by construction; extracted ones must not
// be hallucinations).
func TestPipelinePrecisionFloor(t *testing.T) {
	w := smallWorld()
	kg, err := w.LoadKG()
	if err != nil {
		t.Fatal(err)
	}
	p := New(kg, DefaultConfig())
	acfg := corpus.DefaultArticleConfig(150)
	acfg.AliasRate = 0
	articles := corpus.GenerateArticles(w, acfg)
	p.Run(articles)

	good, bad := 0, 0
	for _, f := range kg.AllFacts() {
		if f.Curated {
			continue
		}
		if w.TrueFact(f.Subject, f.Predicate, f.Object) {
			good++
		} else {
			bad++
		}
	}
	if good+bad == 0 {
		t.Fatal("no extracted facts to grade")
	}
	precision := float64(good) / float64(good+bad)
	// Rumors (10% of events) are reported by articles and legitimately
	// extracted; the precision floor accounts for them.
	if precision < 0.6 {
		t.Fatalf("precision = %.2f (%d good, %d bad), want >= 0.6", precision, good, bad)
	}
}

func TestSlidingWindowEvicts(t *testing.T) {
	w := smallWorld()
	kg, err := w.LoadKG()
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Window = 30 * 24 * time.Hour
	p := New(kg, cfg)
	articles := corpus.GenerateArticles(w, corpus.DefaultArticleConfig(150))
	st := p.Run(articles)
	if st.FactsEvicted == 0 {
		t.Fatalf("no facts evicted across a 6-year stream with a 30-day window: %+v", st)
	}
	// All curated facts must survive.
	curated := 0
	for _, f := range kg.AllFacts() {
		if f.Curated {
			curated++
		}
	}
	if curated != len(w.Curated) {
		t.Fatalf("curated facts lost: %d vs %d", curated, len(w.Curated))
	}
}

func TestDistantSupervisionLearnsRules(t *testing.T) {
	w := smallWorld()
	kg, err := w.LoadKG()
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.LearnEvery = 50
	p := New(kg, cfg)
	acfg := corpus.DefaultArticleConfig(200)
	acfg.KBReportRate = 0.4 // many curated re-reports → learnable phrases
	articles := corpus.GenerateArticles(w, acfg)
	st := p.Run(articles)
	if st.RulesLearned == 0 {
		t.Skip("no rules learned on this seed (phrase coverage already in seeds)")
	}
	if len(p.Mapper().LearnedRules()) == 0 {
		t.Fatal("stats claim learned rules but mapper has none")
	}
}

// TestWorkerCountInvariance: the fan-out/in-order-integrate pipeline must
// produce byte-identical outcomes no matter how many extraction workers
// run. Under -race this is also the concurrency gate for Pipeline.Run.
func TestWorkerCountInvariance(t *testing.T) {
	run := func(workers int) (Stats, int) {
		w := smallWorld()
		kg, err := w.LoadKG()
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig()
		cfg.Workers = workers
		p := New(kg, cfg)
		st := p.Run(corpus.GenerateArticles(w, corpus.DefaultArticleConfig(80)))
		return st, kg.NumFacts()
	}
	serialStats, serialFacts := run(1)
	for _, workers := range []int{2, 4, 8} {
		st, facts := run(workers)
		if st != serialStats {
			t.Fatalf("workers=%d stats diverged from serial:\n%+v\n%+v", workers, st, serialStats)
		}
		if facts != serialFacts {
			t.Fatalf("workers=%d facts=%d, serial=%d", workers, facts, serialFacts)
		}
	}
}

func TestDeterministicRun(t *testing.T) {
	run := func() Stats {
		w := smallWorld()
		kg, err := w.LoadKG()
		if err != nil {
			t.Fatal(err)
		}
		p := New(kg, DefaultConfig())
		return p.Run(corpus.GenerateArticles(w, corpus.DefaultArticleConfig(60)))
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("two identical runs diverged:\n%+v\n%+v", a, b)
	}
}

func TestProcessSingleDocument(t *testing.T) {
	w := smallWorld()
	kg, err := w.LoadKG()
	if err != nil {
		t.Fatal(err)
	}
	p := New(kg, DefaultConfig())
	p.Process(corpus.Article{
		ID: "doc-1", Source: "test",
		Date: time.Date(2015, 3, 1, 0, 0, 0, 0, time.UTC),
		Text: "DJI announced that it has acquired Parrot for $300 million.",
	})
	st := p.Stats()
	if st.Documents != 1 || st.RawTriples == 0 {
		t.Fatalf("stats = %+v", st)
	}
	if !kg.HasFact("DJI", "acquired", "Parrot") {
		t.Fatal("fact not integrated")
	}
}

func BenchmarkPipelineRun(b *testing.B) {
	w := smallWorld()
	articles := corpus.GenerateArticles(w, corpus.DefaultArticleConfig(100))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		kg, err := w.LoadKG()
		if err != nil {
			b.Fatal(err)
		}
		p := New(kg, DefaultConfig())
		b.StartTimer()
		p.Run(articles)
	}
}
