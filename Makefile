# Developer entry points mirroring what CI enforces (.github/workflows/ci.yml).

GO ?= go

.PHONY: all build test lint nouslint fmt bench clean

all: build test lint

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# lint = everything CI's static gates run: gofmt, go vet, the nouslint
# invariant suite, and staticcheck when it is installed locally.
lint: nouslint
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:" >&2; echo "$$unformatted" >&2; exit 1; \
	fi
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it)"; \
	fi

# nouslint builds the repo's own analyzer suite and runs it through go vet so
# test packages are covered and results are build-cached, then once more
# standalone with -json to exercise the in-process fact-propagating driver
# (the output CI turns into annotations).
nouslint:
	$(GO) build -o bin/nouslint ./cmd/nouslint
	$(GO) vet -vettool=$(CURDIR)/bin/nouslint ./...
	./bin/nouslint -json ./...

fmt:
	gofmt -w .

bench:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

clean:
	rm -rf bin
